package opt

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
)

// DefaultLocalMassFloor is the prior-mass budget left outside the locally
// relevant core when LocalOptions.MassFloor is zero.
const DefaultLocalMassFloor = 1e-3

// LocalOptions configures the locally relevant OPT construction.
type LocalOptions struct {
	// MassFloor t bounds the prior mass allowed outside the relevance core
	// (and doubles as the per-row prune budget inside the local domain, so
	// the same β proof obligation covers both). 0 means
	// DefaultLocalMassFloor; must stay below MaxPruneMass.
	MassFloor float64
	// SpannerStretch, when >= 1, makes the reduced LP itself use spanner
	// constraints (GreedySpanner over the local domain centers at
	// eps/stretch per edge) instead of the full ordered-pair set.
	SpannerStretch float64
	// LP configures the interior-point solver for the reduced program.
	LP *lp.IPMOptions
	// Workers bounds the parallelism of relevance-set construction
	// (channel.Workers semantics: 0 or 1 is sequential, negative means
	// GOMAXPROCS). The result is identical for any value.
	Workers int
}

func (o *LocalOptions) massFloor() float64 {
	if o == nil || o.MassFloor == 0 {
		return DefaultLocalMassFloor
	}
	return o.MassFloor
}

// BuildLocal solves the OPT program over a locally relevant subset of the
// grid and pads the excluded tail analytically. See BuildLocalCtx.
func BuildLocal(eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, radius float64, opts *LocalOptions) (*Channel, error) {
	return BuildLocalCtx(context.Background(), eps, g, priorWeights, metric, radius, opts)
}

// BuildLocalCtx builds the locally relevant OPT channel:
//
//  1. Select the relevance domain L: the heaviest-prior cells covering at
//     least 1-t of the mass (t = MassFloor), dilated by radius km around
//     each core cell. Dilation is parallelized over the Workers pool.
//  2. Solve the OPT LP restricted to L (inputs = outputs = L, objective
//     weighted by the restricted prior), optionally with spanner
//     constraints over L's centers.
//  3. Pad back to the full grid with the β-background machinery Prune
//     uses: rows for x in L keep (1-β)·K_L on L's columns (entries below
//     t/n pruned into the row background) plus a uniform background
//     (β + (1-β)·pruned)/n on every cell, with β chosen by the same
//     mediant-inequality proof obligation as Prune so within-L GeoInd is
//     preserved without renormalizing. Rows for x outside L are exact
//     copies of the nearest domain cell's row (deterministic snap,
//     ties to the lower index), the sparse analogue of the boundary
//     clamping Sample already applies to out-of-region inputs.
//  4. Re-gate with the GeoInd verifier restricted to the reduced domain
//     (all ordered pairs in L×L over all n outputs). On failure the
//     construction errors out so callers can fall back to the dense
//     solve and count it.
//
// The resulting channel is compact (CSR + row background, like Prune's
// output) and carries its domain, so snapshots persist only the m solved
// rows' structure and verification stays restricted after a reload. The
// ε guarantee is exact for input pairs within L; pairs involving snapped
// inputs inherit their representative's row (a snapped input is
// indistinguishable from its representative by construction). Callers
// needing full-domain ε must use Build or BuildSpanner.
func BuildLocalCtx(ctx context.Context, eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, radius float64, opts *LocalOptions) (*Channel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	if !(radius > 0) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("opt: local radius must be positive and finite, got %g", radius)
	}
	t := opts.massFloor()
	if !(t > 0) || t >= MaxPruneMass {
		return nil, fmt.Errorf("opt: local mass floor %g outside (0, %g)", t, MaxPruneMass)
	}
	stretch := 0.0
	if opts != nil {
		stretch = opts.SpannerStretch
	}
	if stretch != 0 && (stretch < 1 || math.IsInf(stretch, 0) || math.IsNaN(stretch)) {
		return nil, fmt.Errorf("opt: spanner stretch must be >= 1, got %g", stretch)
	}
	n := g.NumCells()
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}

	workers := 0
	if opts != nil {
		workers = opts.Workers
	}
	domain := relevanceDomain(g, pi, radius, t, workers)
	centers := g.Centers()

	// β comes from the identical proof obligation Prune discharges: the
	// worst kept/background ratio at the minimum pair distance. Distinct
	// grid cells differ by at least one row or column, so min(cellW,
	// cellH) lower-bounds every within-domain pair distance.
	cw, chh := g.CellSize()
	dmin := math.Min(cw, chh)
	beta, err := pruneBeta(eps, t, dmin)
	if err != nil {
		return nil, err
	}

	kL, iters, pairFamilies, err := solveLocalLP(ctx, eps, g, domain, pi, metric, stretch, beta, opts)
	if err != nil {
		return nil, err
	}

	s := assembleLocal(g, domain, kL, t, beta)
	if ex := verifyLocalSparse(g, eps, s, domain); ex > pruneVerifyTol {
		return nil, fmt.Errorf("opt: local channel violates GeoInd on the reduced domain by %.3g", ex)
	}

	ch := &Channel{
		Grid:         g,
		Eps:          eps,
		Metric:       metric,
		Iters:        iters,
		PairFamilies: pairFamilies,
		localDomain:  domain,
		ExpectedLoss: expectedLossSparse(s, centers, pi, metric),
	}
	ch.initSparse(s)
	return ch, nil
}

// relevanceDomain returns the sorted locally relevant domain: the smallest
// set of heaviest-prior cells whose cumulative mass reaches 1-massFloor
// (ties broken by lower index), dilated by radius km around each core
// cell. Dilation over core cells runs on the Workers pool; marking is
// idempotent so the result is identical for any worker count.
func relevanceDomain(g *grid.Grid, pi []float64, radius, massFloor float64, workers int) []int32 {
	n := g.NumCells()
	ord := make([]int, 0, n)
	for i, w := range pi {
		if w > 0 {
			ord = append(ord, i)
		}
	}
	sort.Slice(ord, func(a, b int) bool {
		if pi[ord[a]] != pi[ord[b]] {
			return pi[ord[a]] > pi[ord[b]]
		}
		return ord[a] < ord[b]
	})
	core := ord[:0]
	acc := 0.0
	for _, c := range ord {
		core = append(core, c)
		acc += pi[c]
		if acc >= 1-massFloor {
			break
		}
	}

	centers := g.Centers()
	gran := g.Granularity()
	cw, chh := g.CellSize()
	// Candidate box: cells whose center can be within radius of the core
	// cell's center.
	rCols := int(math.Ceil(radius / cw))
	rRows := int(math.Ceil(radius / chh))
	marked := make([]atomic.Bool, n)
	_ = channel.ForEach(workers, len(core), func(i int) error {
		c := core[i]
		row, col := g.RowCol(c)
		for r := max(0, row-rRows); r <= min(gran-1, row+rRows); r++ {
			for cc := max(0, col-rCols); cc <= min(gran-1, col+rCols); cc++ {
				z := g.Index(r, cc)
				if !marked[z].Load() && centers[c].Dist(centers[z]) <= radius {
					marked[z].Store(true)
				}
			}
		}
		return nil
	})

	domain := make([]int32, 0, len(core))
	for z := 0; z < n; z++ {
		if marked[z].Load() {
			domain = append(domain, int32(z))
		}
	}
	return domain
}

// snapReps maps every grid cell to its representative domain cell: itself
// for domain members, otherwise the nearest domain cell by center distance
// with ties broken by the lower cell index. The mapping is a pure function
// of (grid geometry, domain), so encoder and decoder derive the same rows.
func snapReps(g *grid.Grid, domain []int32) []int32 {
	n := g.NumCells()
	centers := g.Centers()
	inDomain := make([]bool, n)
	for _, d := range domain {
		inDomain[d] = true
	}
	rep := make([]int32, n)
	for x := 0; x < n; x++ {
		if inDomain[x] {
			rep[x] = int32(x)
			continue
		}
		best := domain[0]
		bestD := centers[x].Dist2(centers[best])
		for _, d := range domain[1:] {
			if dd := centers[x].Dist2(centers[d]); dd < bestD {
				best, bestD = d, dd
			}
		}
		rep[x] = best
	}
	return rep
}

// solveLocalLP solves the OPT program restricted to the domain cells. The
// objective uses the restricted prior (unnormalized: scaling the objective
// does not move the optimum). Constraint families are either the full
// ordered pairs over the domain — with pairs whose coefficient is below
// the padded background floor β/n dropped, since the padding makes them
// vacuous — or, when stretch >= 1, a greedy spanner over the domain
// centers at eps/stretch per edge (both directions, nothing dropped).
func solveLocalLP(ctx context.Context, eps float64, g *grid.Grid, domain []int32, pi []float64, metric geo.Metric, stretch, beta float64, opts *LocalOptions) (k []float64, iters, pairFamilies int, err error) {
	m := len(domain)
	n := g.NumCells()
	centers := g.Centers()
	local := make([]geo.Point, m)
	for j, d := range domain {
		local[j] = centers[d]
	}

	prob := &lp.GeoIndProblem{N: m, Obj: make([]float64, m*m)}
	for j, d := range domain {
		w := pi[d]
		for l := 0; l < m; l++ {
			prob.Obj[j*m+l] = w * metric.Loss(local[j], local[l])
		}
	}
	if stretch >= 1 {
		epsEdge := eps / stretch
		for _, e := range GreedySpanner(local, stretch) {
			coef := math.Exp(-epsEdge * local[e[0]].Dist(local[e[1]]))
			prob.Pairs = append(prob.Pairs,
				lp.Pair{X: e[0], Xp: e[1], Coef: coef},
				lp.Pair{X: e[1], Xp: e[0], Coef: coef})
		}
	} else {
		dropTol := beta / float64(n)
		for j := 0; j < m; j++ {
			for l := 0; l < m; l++ {
				if j == l {
					continue
				}
				coef := math.Exp(-eps * local[j].Dist(local[l]))
				if coef <= dropTol {
					continue // implied by the β/n background floor
				}
				prob.Pairs = append(prob.Pairs, lp.Pair{X: j, Xp: l, Coef: coef})
			}
		}
	}

	var lpOpts *lp.IPMOptions
	if opts != nil {
		lpOpts = opts.LP
	}
	sol, err := prob.SolveCtx(ctx, lpOpts)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("opt: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, 0, 0, fmt.Errorf("opt: local LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
	}
	k = sol.K
	cleanup(k, m)
	return k, sol.Iters, len(prob.Pairs), nil
}

// assembleLocal pads the m×m local solution back to an n-row compact
// channel. Domain rows follow pruneMatrix exactly, applied to the
// zero-padded full row: entries below t/n (including every out-of-domain
// column, which is exactly zero) are pruned into the per-row background
// (β + (1-β)·prunedMass)/n, kept entries scale by 1-β. Row sums stay
// exactly (1-β)(1-pruned) + β + (1-β)·pruned = 1 — nothing is
// renormalized. Out-of-domain rows are entry-for-entry copies of their
// snap representative's row.
func assembleLocal(g *grid.Grid, domain []int32, kL []float64, massFloor, beta float64) *sparseRows {
	n := g.NumCells()
	m := len(domain)
	cutoff := massFloor / float64(n)

	type localRow struct {
		idx []int32
		val []float64
		bg  float64
	}
	rows := make([]localRow, m)
	for j := 0; j < m; j++ {
		r := localRow{}
		pruned := 0.0
		for l := 0; l < m; l++ {
			v := kL[j*m+l]
			if v < cutoff {
				pruned += v
				continue
			}
			r.idx = append(r.idx, domain[l])
			r.val = append(r.val, (1-beta)*v)
		}
		r.bg = (beta + (1-beta)*pruned) / float64(n)
		rows[j] = r
	}

	localIndex := make([]int32, n)
	for i := range localIndex {
		localIndex[i] = -1
	}
	for j, d := range domain {
		localIndex[d] = int32(j)
	}
	rep := snapReps(g, domain)

	s := &sparseRows{
		n:         n,
		beta:      beta,
		pruneMass: massFloor,
		rowStart:  make([]int32, n+1),
		bg:        make([]float64, n),
	}
	for x := 0; x < n; x++ {
		r := rows[localIndex[rep[x]]]
		s.rowStart[x] = int32(len(s.idx))
		s.idx = append(s.idx, r.idx...)
		s.val = append(s.val, r.val...)
		s.bg[x] = r.bg
	}
	s.rowStart[n] = int32(len(s.idx))
	s.finish()
	return s
}

// verifyLocalSparse is the GeoInd verifier restricted to the reduced
// domain: it checks every ordered pair of domain inputs against every
// output cell and returns the maximum constraint excess
// max(log K[x][z] - log K[x'][z] - eps·d(x, x')), exactly as VerifyGeoInd
// does over the full domain. Pairs involving snapped inputs are outside
// the restricted guarantee (a snapped row equals its representative's, so
// the pair (snapped, rep) is trivially at excess 0, but two snapped cells
// with different representatives are not checked).
func verifyLocalSparse(g *grid.Grid, eps float64, s *sparseRows, domain []int32) float64 {
	n := s.n
	m := len(domain)
	centers := g.Centers()
	logRows := make([]float64, m*n)
	row := make([]float64, 0, n)
	for j, d := range domain {
		row = s.appendRow(row[:0], int(d))
		for z, v := range row {
			logRows[j*n+z] = math.Log(v)
		}
	}
	worst := math.Inf(-1)
	for j := 0; j < m; j++ {
		for l := 0; l < m; l++ {
			if j == l {
				continue
			}
			bound := eps * centers[domain[j]].Dist(centers[domain[l]])
			a := logRows[j*n : (j+1)*n]
			b := logRows[l*n : (l+1)*n]
			for z := 0; z < n; z++ {
				if ex := a[z] - b[z] - bound; ex > worst {
					worst = ex
				}
			}
		}
	}
	return worst
}

// LocalDomain returns a copy of the locally relevant domain (sorted full-
// grid cell indices) for a channel built by BuildLocal, or nil for dense,
// spanner and pruned channels.
func (c *Channel) LocalDomain() []int {
	if c.localDomain == nil {
		return nil
	}
	out := make([]int, len(c.localDomain))
	for i, d := range c.localDomain {
		out[i] = int(d)
	}
	return out
}

// IsLocal reports whether the channel was built over a locally relevant
// domain (and therefore verifies GeoInd restricted to that domain).
func (c *Channel) IsLocal() bool { return c.localDomain != nil }
