package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
)

func TestBuildPointsValidation(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	w := []float64{1, 1}
	if _, err := BuildPoints(0, pts, w, geo.Euclidean, nil); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := BuildPoints(0.5, nil, nil, geo.Euclidean, nil); err == nil {
		t.Error("empty candidate set should error")
	}
	if _, err := BuildPoints(0.5, pts, w[:1], geo.Euclidean, nil); err == nil {
		t.Error("weight mismatch should error")
	}
	if _, err := BuildPoints(0.5, pts, []float64{0, 0}, geo.Euclidean, nil); err == nil {
		t.Error("zero prior should error")
	}
	if _, err := BuildPoints(0.5, pts, w, geo.Metric(9), nil); err == nil {
		t.Error("bad metric should error")
	}
}

// TestBuildPointsMatchesGridBuild: on grid centers, BuildPoints and Build
// produce the same objective.
func TestBuildPointsMatchesGridBuild(t *testing.T) {
	g := g20(3)
	w := []float64{2, 1, 1, 1, 4, 1, 1, 1, 3}
	gridCh, err := Build(0.5, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	ptsCh, err := BuildPoints(0.5, g.Centers(), w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gridCh.ExpectedLoss-ptsCh.ExpectedLoss) > 1e-6*(1+gridCh.ExpectedLoss) {
		t.Errorf("grid %g vs points %g", gridCh.ExpectedLoss, ptsCh.ExpectedLoss)
	}
	if ex := VerifyGeoIndPoints(g.Centers(), 0.5, ptsCh.K); ex > 1e-6 {
		t.Errorf("points channel violates GeoInd by %g", ex)
	}
}

// TestBuildPointsIrregular: an irregular candidate set solves and samples
// correctly.
func TestBuildPointsIrregular(t *testing.T) {
	pts := []geo.Point{{X: 0.5, Y: 0.5}, {X: 1.1, Y: 4.0}, {X: 8, Y: 2}, {X: 15, Y: 15}, {X: 16, Y: 14.5}}
	w := []float64{5, 1, 2, 4, 3}
	ch, err := BuildPoints(0.4, pts, w, geo.SquaredEuclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch.N() != 5 {
		t.Fatalf("N=%d", ch.N())
	}
	for x := 0; x < 5; x++ {
		sum := 0.0
		for z := 0; z < 5; z++ {
			p := ch.Prob(x, z)
			if p <= 0 {
				t.Fatalf("Prob(%d,%d)=%g not strictly positive", x, z, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", x, sum)
		}
	}
	if ex := VerifyGeoIndPoints(pts, 0.4, ch.K); ex > 1e-6 {
		t.Errorf("GeoInd violated by %g", ex)
	}
	// Sampling matches row distribution.
	rng := rand.New(rand.NewPCG(3, 4))
	counts := make([]float64, 5)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[ch.SampleIndex(0, rng)]++
	}
	for z := 0; z < 5; z++ {
		if math.Abs(counts[z]/trials-ch.Prob(0, z)) > 0.012 {
			t.Errorf("z=%d: empirical %g vs %g", z, counts[z]/trials, ch.Prob(0, z))
		}
	}
}

// TestBuildPointsCoincident: duplicate candidate locations must behave
// identically (distance zero forces equal rows).
func TestBuildPointsCoincident(t *testing.T) {
	pts := []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 12, Y: 12}}
	w := []float64{1, 2, 3}
	ch, err := BuildPoints(0.5, pts, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 3; z++ {
		if math.Abs(ch.Prob(0, z)-ch.Prob(1, z)) > 1e-6 {
			t.Errorf("coincident rows differ at z=%d: %g vs %g", z, ch.Prob(0, z), ch.Prob(1, z))
		}
	}
	if ex := VerifyGeoIndPoints(pts, 0.5, ch.K); ex > 1e-5 {
		t.Errorf("GeoInd (with zero-distance pair) violated by %g", ex)
	}
}

// TestVerifyGeoIndPointsCatchesViolation: deliberately unsafe channel.
func TestVerifyGeoIndPointsCatchesViolation(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	k := []float64{0.99, 0.01, 0.01, 0.99}
	if ex := VerifyGeoIndPoints(pts, 0.1, k); ex < 1 {
		t.Errorf("verifier missed violation: %g", ex)
	}
}
