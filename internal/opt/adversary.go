package opt

import (
	"fmt"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// AdversaryError computes the expected inference error of a Bayesian
// adversary against a channel: the adversary knows the prior and the
// channel, observes the reported cell z, and guesses the location
//
//	xhat(z) = argmin_{xhat} sum_x Pr[x | z] * dA(x, xhat),
//
// minimizing posterior expected error under the adversary metric dA. The
// returned value is the adversary's expected error
//
//	sum_z Pr[z] * min_{xhat} E[dA(x, xhat) | z],
//
// the standard complementary privacy measure in the GeoInd literature
// (Shokri et al.): *larger* is better for the user. k is a row-stochastic
// channel over g's cells (row = true cell, column = reported cell).
func AdversaryError(g *grid.Grid, k []float64, priorWeights []float64, metric geo.Metric) (float64, error) {
	n := g.NumCells()
	if len(k) != n*n {
		return 0, fmt.Errorf("opt: adversary: channel size %d for %d cells", len(k), n)
	}
	if len(priorWeights) != n {
		return 0, fmt.Errorf("opt: adversary: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return 0, fmt.Errorf("opt: adversary: %w", err)
	}
	if !metric.Valid() {
		return 0, fmt.Errorf("opt: adversary: unknown metric %v", metric)
	}
	centers := g.Centers()
	total := 0.0
	for z := 0; z < n; z++ {
		// Unnormalized posterior weights pi_x * K[x][z]; the normalizer
		// Pr[z] cancels in the outer expectation.
		best := -1.0
		for xh := 0; xh < n; xh++ {
			cost := 0.0
			for x := 0; x < n; x++ {
				w := pi[x] * k[x*n+z]
				if w == 0 {
					continue
				}
				cost += w * metric.Loss(centers[x], centers[xh])
			}
			if best < 0 || cost < best {
				best = cost
			}
		}
		total += best
	}
	return total, nil
}

// ExpectedLossOf computes the expected utility loss of an arbitrary channel
// under a prior and metric (the quantity OPT minimizes, usable on any
// channel matrix such as a PL discretization or an MSM end-to-end channel).
func ExpectedLossOf(g *grid.Grid, k []float64, priorWeights []float64, metric geo.Metric) (float64, error) {
	n := g.NumCells()
	if len(k) != n*n {
		return 0, fmt.Errorf("opt: loss: channel size %d for %d cells", len(k), n)
	}
	if len(priorWeights) != n {
		return 0, fmt.Errorf("opt: loss: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return 0, fmt.Errorf("opt: loss: %w", err)
	}
	if !metric.Valid() {
		return 0, fmt.Errorf("opt: loss: unknown metric %v", metric)
	}
	centers := g.Centers()
	total := 0.0
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			if k[x*n+z] == 0 {
				continue
			}
			total += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	return total, nil
}
