package opt

import (
	"math"
	"testing"

	"geoind/internal/geo"
)

func uniformSens(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestElasticMetricValidation(t *testing.T) {
	g := g20(3)
	if _, err := ElasticMetric(g, 0, uniformSens(9)); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := ElasticMetric(g, 0.5, uniformSens(4)); err == nil {
		t.Error("length mismatch should error")
	}
	bad := uniformSens(9)
	bad[3] = 0
	if _, err := ElasticMetric(g, 0.5, bad); err == nil {
		t.Error("zero sensitivity should error")
	}
	bad[3] = 1.5
	if _, err := ElasticMetric(g, 0.5, bad); err == nil {
		t.Error("sensitivity > 1 should error")
	}
}

// TestElasticMetricIsMetric: symmetric, zero diagonal, triangle inequality.
func TestElasticMetricIsMetric(t *testing.T) {
	g := g20(4)
	sens := uniformSens(16)
	sens[5], sens[6] = 0.3, 0.5 // a sensitive pocket
	ell, err := ElasticMetric(g, 0.5, sens)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	for x := 0; x < n; x++ {
		if ell[x*n+x] != 0 {
			t.Fatalf("diag[%d]=%g", x, ell[x*n+x])
		}
		for y := 0; y < n; y++ {
			if math.Abs(ell[x*n+y]-ell[y*n+x]) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", x, y)
			}
			for z := 0; z < n; z++ {
				if ell[x*n+z] > ell[x*n+y]+ell[y*n+z]+1e-12 {
					t.Fatalf("triangle violated at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

// TestElasticMetricUniformApproximatesEuclid: with sensitivity 1 everywhere
// the metric is the octile shortest path: at least eps*d, at most ~1.09x it.
func TestElasticMetricUniformApproximatesEuclid(t *testing.T) {
	g := g20(5)
	eps := 0.5
	ell, err := ElasticMetric(g, eps, uniformSens(25))
	if err != nil {
		t.Fatal(err)
	}
	centers := g.Centers()
	for x := 0; x < 25; x++ {
		for y := 0; y < 25; y++ {
			if x == y {
				continue
			}
			base := eps * centers[x].Dist(centers[y])
			got := ell[x*25+y]
			if got < base-1e-9 {
				t.Fatalf("(%d,%d): elastic %g below Euclid level %g", x, y, got, base)
			}
			if got > base*1.0824+1e-9 {
				t.Fatalf("(%d,%d): elastic %g exceeds octile bound of %g", x, y, got, base*1.0824)
			}
		}
	}
}

// TestElasticMetricSensitiveZone: distinguishability involving sensitive
// cells is strictly lower than under uniform sensitivity.
func TestElasticMetricSensitiveZone(t *testing.T) {
	g := g20(4)
	eps := 0.5
	plain, err := ElasticMetric(g, eps, uniformSens(16))
	if err != nil {
		t.Fatal(err)
	}
	sens := uniformSens(16)
	hospital := g.Index(1, 1)
	sens[hospital] = 0.25
	ell, err := ElasticMetric(g, eps, sens)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs touching the hospital cell become harder to distinguish.
	for y := 0; y < 16; y++ {
		if y == hospital {
			continue
		}
		if ell[hospital*16+y] >= plain[hospital*16+y] {
			t.Fatalf("hospital pair (%d): %g not below plain %g", y, ell[hospital*16+y], plain[hospital*16+y])
		}
	}
	// Pairs far from it are unchanged.
	a, b := g.Index(3, 3), g.Index(3, 2)
	if math.Abs(ell[a*16+b]-plain[a*16+b]) > 1e-12 {
		t.Errorf("far pair changed: %g vs %g", ell[a*16+b], plain[a*16+b])
	}
}

func TestBuildMetricValidation(t *testing.T) {
	g := g20(3)
	ell := make([]float64, 81)
	if _, err := BuildMetric(ell[:4], g, uniformWeights(9), geo.Euclidean, nil); err == nil {
		t.Error("metric size mismatch should error")
	}
	if _, err := BuildMetric(ell, g, uniformWeights(4), geo.Euclidean, nil); err == nil {
		t.Error("prior mismatch should error")
	}
	if _, err := BuildMetric(ell, g, uniformWeights(9), geo.Metric(9), nil); err == nil {
		t.Error("bad metric should error")
	}
	ell[5] = -1
	if _, err := BuildMetric(ell, g, uniformWeights(9), geo.Euclidean, nil); err == nil {
		t.Error("negative level should error")
	}
}

// TestBuildMetricMatchesBuild: with ell = eps*d the metric LP reproduces the
// standard OPT objective.
func TestBuildMetricMatchesBuild(t *testing.T) {
	g := g20(3)
	eps := 0.5
	w := []float64{3, 1, 1, 1, 5, 1, 1, 1, 2}
	centers := g.Centers()
	ell := make([]float64, 81)
	for x := 0; x < 9; x++ {
		for y := 0; y < 9; y++ {
			ell[x*9+y] = eps * centers[x].Dist(centers[y])
		}
	}
	mch, err := BuildMetric(ell, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Build(eps, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mch.ExpectedLoss-ch.ExpectedLoss) > 1e-5*(1+ch.ExpectedLoss) {
		t.Errorf("metric LP loss %g vs standard %g", mch.ExpectedLoss, ch.ExpectedLoss)
	}
	if ex := VerifyMetricInd(9, ell, mch.K); ex > 1e-6 {
		t.Errorf("metric constraints violated by %g", ex)
	}
}

// TestElasticChannelProtectsSensitiveArea: under the elastic metric the
// mechanism blurs sensitive cells more (lower Pr[x|x]) at a measurable
// utility cost, and still satisfies its constraints.
func TestElasticChannelProtectsSensitiveArea(t *testing.T) {
	g := g20(4)
	eps := 0.9
	w := uniformWeights(16)
	hospital := g.Index(1, 1)
	sens := uniformSens(16)
	sens[hospital] = 0.25

	ell, err := ElasticMetric(g, eps, sens)
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := BuildMetric(ell, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex := VerifyMetricInd(16, ell, elastic.K); ex > 1e-6 {
		t.Fatalf("elastic constraints violated by %g", ex)
	}

	plainEll, err := ElasticMetric(g, eps, uniformSens(16))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildMetric(plainEll, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elastic.ProbSame(hospital) >= plain.ProbSame(hospital) {
		t.Errorf("hospital Pr[x|x] %g not below plain %g",
			elastic.ProbSame(hospital), plain.ProbSame(hospital))
	}
	if elastic.ExpectedLoss < plain.ExpectedLoss-1e-9 {
		t.Errorf("extra protection should not be free: %g < %g",
			elastic.ExpectedLoss, plain.ExpectedLoss)
	}
}
