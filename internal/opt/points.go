package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"geoind/internal/geo"
	"geoind/internal/lp"
)

// PointChannel is an optimal GeoInd mechanism over an arbitrary finite set
// of candidate locations (the "logical locations" of §3.1 need not come
// from a regular grid — the paper's future work considers k-d-tree style
// partitions whose cell centers are irregular).
type PointChannel struct {
	// Centers are the candidate locations; X = Z = Centers.
	Centers []geo.Point
	// Eps is the privacy budget the channel satisfies.
	Eps float64
	// Metric is the utility metric optimized.
	Metric geo.Metric
	// K is the row-major channel matrix with strictly positive entries and
	// unit row sums.
	K []float64
	// ExpectedLoss is the analytic expected loss under the construction
	// prior.
	ExpectedLoss float64
	// Iters is the number of interior-point iterations used.
	Iters int

	cum    []float64   // dense: row-wise cumulative sums (reference sampler)
	sparse *sparseRows // compact: pruned representation (K and cum are nil)
	ref    Sampler     // cached reference sampler

	aliasOnce sync.Once
	alias     Sampler
}

// buildCum builds the dense cumulative rows and caches the reference
// sampler (shared prefix-sum and binary-search code with Channel).
func (c *PointChannel) buildCum() {
	n := c.N()
	c.cum = prefixSumRows(n, c.K)
	c.ref = cumSampler{n: n, cum: c.cum}
}

// initSparse attaches a compact representation and its reference sampler.
func (c *PointChannel) initSparse(s *sparseRows) {
	c.sparse = s
	c.ref = sparseRefSampler{s: s}
}

// BuildPoints solves the OPT linear program over an arbitrary candidate set.
// It is the generalization of Build used by the adaptive index, and shares
// all of Build's post-processing guarantees (cleanup + uniform mixing).
//
// Coincident candidates (zero distance) would force exact row equalities,
// an LP with empty interior that no interior-point method can traverse;
// they are therefore merged before solving (weights summed) and the solved
// channel is expanded back, splitting each merged output column evenly
// among its duplicates — which preserves stochasticity, the GeoInd
// constraints and the expected loss exactly.
func BuildPoints(eps float64, centers []geo.Point, priorWeights []float64, metric geo.Metric, opts *Options) (*PointChannel, error) {
	return BuildPointsCtx(context.Background(), eps, centers, priorWeights, metric, opts)
}

// BuildPointsCtx is BuildPoints under a context; see BuildCtx for the
// cancellation contract.
func BuildPointsCtx(ctx context.Context, eps float64, centers []geo.Point, priorWeights []float64, metric geo.Metric, opts *Options) (*PointChannel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	n := len(centers)
	if n == 0 {
		return nil, fmt.Errorf("opt: empty candidate set")
	}
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d candidates", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}

	// Merge coincident candidates.
	rep := make([]int, n)   // candidate -> reduced index
	var reduced []geo.Point // unique locations
	var redW []float64      // merged weights
	var dupCount []int      // duplicates per reduced index
	index := map[geo.Point]int{}
	for i, c := range centers {
		if j, ok := index[c]; ok {
			rep[i] = j
			redW[j] += pi[i]
			dupCount[j]++
			continue
		}
		j := len(reduced)
		index[c] = j
		rep[i] = j
		reduced = append(reduced, c)
		redW = append(redW, pi[i])
		dupCount = append(dupCount, 1)
	}
	m := len(reduced)

	delta := (opts).mixDelta()
	dropTol := 0.0
	if delta > 0 {
		dropTol = delta / float64(m)
	}

	var kRed []float64
	iters := 0
	if m == 1 {
		kRed = []float64{1}
	} else {
		prob := &lp.GeoIndProblem{N: m, Obj: make([]float64, m*m)}
		for x := 0; x < m; x++ {
			for z := 0; z < m; z++ {
				prob.Obj[x*m+z] = redW[x] * metric.Loss(reduced[x], reduced[z])
			}
		}
		for x := 0; x < m; x++ {
			for xp := 0; xp < m; xp++ {
				if x == xp {
					continue
				}
				coef := math.Exp(-eps * reduced[x].Dist(reduced[xp]))
				if coef <= dropTol {
					continue
				}
				prob.Pairs = append(prob.Pairs, lp.Pair{X: x, Xp: xp, Coef: coef})
			}
		}
		var lpOpts *lp.IPMOptions
		if opts != nil {
			lpOpts = opts.LP
		}
		sol, err := prob.SolveCtx(ctx, lpOpts)
		if err != nil {
			return nil, fmt.Errorf("opt: %w", err)
		}
		if sol.Status != lp.StatusOptimal {
			return nil, fmt.Errorf("opt: LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
		}
		kRed = sol.K
		iters = sol.Iters
		cleanup(kRed, m)
		if delta > 0 {
			mixUniform(kRed, m, delta)
		}
	}

	// Expand back to the full candidate set.
	k := make([]float64, n*n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			k[x*n+z] = kRed[rep[x]*m+rep[z]] / float64(dupCount[rep[z]])
		}
	}
	ch := &PointChannel{
		Centers: append([]geo.Point(nil), centers...),
		Eps:     eps, Metric: metric, K: k, Iters: iters,
	}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			ch.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	ch.buildCum()
	return ch, nil
}

// N returns the number of candidate locations.
func (c *PointChannel) N() int { return len(c.Centers) }

// IsCompact reports whether the channel uses the pruned sparse
// representation (K is nil; use Prob, Row or DenseK for matrix access).
func (c *PointChannel) IsCompact() bool { return c.sparse != nil }

// Prob returns K(x)(z).
func (c *PointChannel) Prob(x, z int) float64 {
	if c.sparse != nil {
		return c.sparse.prob(x, z)
	}
	return c.K[x*c.N()+z]
}

// Row returns row x of the channel matrix. For dense channels this is a
// view into K (do not mutate); compact channels materialize a fresh slice.
func (c *PointChannel) Row(x int) []float64 {
	if c.sparse != nil {
		return c.sparse.appendRow(nil, x)
	}
	n := c.N()
	return c.K[x*n : (x+1)*n]
}

// DenseK returns the full row-major matrix. Dense channels return K itself
// (do not mutate); compact channels materialize a fresh n*n slice.
func (c *PointChannel) DenseK() []float64 {
	if c.sparse != nil {
		return c.sparse.dense()
	}
	return c.K
}

// VerifyMaxExcess re-runs the O(n^3) GeoInd verifier on the channel
// (materializing compact representations); <= 0 means every constraint holds.
func (c *PointChannel) VerifyMaxExcess() float64 {
	return VerifyGeoIndPoints(c.Centers, c.Eps, c.DenseK())
}

// SampleIndex draws an output candidate index for input candidate x with the
// reference sampler (cumulative binary search; the historical draw stream).
func (c *PointChannel) SampleIndex(x int, rng *rand.Rand) int {
	return c.ref.Sample(x, rng)
}

// Sampler returns the channel's sampler of the requested kind; see
// Channel.Sampler for the construction and sharing contract.
func (c *PointChannel) Sampler(kind SamplerKind) Sampler {
	if kind != SamplerAlias {
		return c.ref
	}
	c.aliasOnce.Do(func() {
		if c.sparse != nil {
			c.alias = newSparseAlias(c.sparse)
		} else {
			c.alias = newAliasTable(c.N(), c.K)
		}
	})
	return c.alias
}

// VerifyGeoIndPoints exhaustively checks a channel over arbitrary candidate
// locations against Eq. (1); it returns the maximum log-ratio excess
// (<= 0 means the constraint holds everywhere). Coincident candidates are
// checked with distance 0, i.e. their rows must be identical.
func VerifyGeoIndPoints(centers []geo.Point, eps float64, k []float64) float64 {
	n := len(centers)
	logK := make([]float64, len(k))
	for i, v := range k {
		if v <= 0 {
			logK[i] = math.Inf(-1)
		} else {
			logK[i] = math.Log(v)
		}
	}
	maxExcess := math.Inf(-1)
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			bound := eps * centers[x].Dist(centers[xp])
			for z := 0; z < n; z++ {
				if ex := logK[x*n+z] - logK[xp*n+z] - bound; ex > maxExcess {
					maxExcess = ex
				}
			}
		}
	}
	return maxExcess
}
