package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"geoind/internal/geo"
	"geoind/internal/lp"
)

// PointChannel is an optimal GeoInd mechanism over an arbitrary finite set
// of candidate locations (the "logical locations" of §3.1 need not come
// from a regular grid — the paper's future work considers k-d-tree style
// partitions whose cell centers are irregular).
type PointChannel struct {
	// Centers are the candidate locations; X = Z = Centers.
	Centers []geo.Point
	// Eps is the privacy budget the channel satisfies.
	Eps float64
	// Metric is the utility metric optimized.
	Metric geo.Metric
	// K is the row-major channel matrix with strictly positive entries and
	// unit row sums.
	K []float64
	// ExpectedLoss is the analytic expected loss under the construction
	// prior.
	ExpectedLoss float64
	// Iters is the number of interior-point iterations used.
	Iters int

	cum []float64
}

// BuildPoints solves the OPT linear program over an arbitrary candidate set.
// It is the generalization of Build used by the adaptive index, and shares
// all of Build's post-processing guarantees (cleanup + uniform mixing).
//
// Coincident candidates (zero distance) would force exact row equalities,
// an LP with empty interior that no interior-point method can traverse;
// they are therefore merged before solving (weights summed) and the solved
// channel is expanded back, splitting each merged output column evenly
// among its duplicates — which preserves stochasticity, the GeoInd
// constraints and the expected loss exactly.
func BuildPoints(eps float64, centers []geo.Point, priorWeights []float64, metric geo.Metric, opts *Options) (*PointChannel, error) {
	return BuildPointsCtx(context.Background(), eps, centers, priorWeights, metric, opts)
}

// BuildPointsCtx is BuildPoints under a context; see BuildCtx for the
// cancellation contract.
func BuildPointsCtx(ctx context.Context, eps float64, centers []geo.Point, priorWeights []float64, metric geo.Metric, opts *Options) (*PointChannel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	n := len(centers)
	if n == 0 {
		return nil, fmt.Errorf("opt: empty candidate set")
	}
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d candidates", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}

	// Merge coincident candidates.
	rep := make([]int, n)   // candidate -> reduced index
	var reduced []geo.Point // unique locations
	var redW []float64      // merged weights
	var dupCount []int      // duplicates per reduced index
	index := map[geo.Point]int{}
	for i, c := range centers {
		if j, ok := index[c]; ok {
			rep[i] = j
			redW[j] += pi[i]
			dupCount[j]++
			continue
		}
		j := len(reduced)
		index[c] = j
		rep[i] = j
		reduced = append(reduced, c)
		redW = append(redW, pi[i])
		dupCount = append(dupCount, 1)
	}
	m := len(reduced)

	delta := (opts).mixDelta()
	dropTol := 0.0
	if delta > 0 {
		dropTol = delta / float64(m)
	}

	var kRed []float64
	iters := 0
	if m == 1 {
		kRed = []float64{1}
	} else {
		prob := &lp.GeoIndProblem{N: m, Obj: make([]float64, m*m)}
		for x := 0; x < m; x++ {
			for z := 0; z < m; z++ {
				prob.Obj[x*m+z] = redW[x] * metric.Loss(reduced[x], reduced[z])
			}
		}
		for x := 0; x < m; x++ {
			for xp := 0; xp < m; xp++ {
				if x == xp {
					continue
				}
				coef := math.Exp(-eps * reduced[x].Dist(reduced[xp]))
				if coef <= dropTol {
					continue
				}
				prob.Pairs = append(prob.Pairs, lp.Pair{X: x, Xp: xp, Coef: coef})
			}
		}
		var lpOpts *lp.IPMOptions
		if opts != nil {
			lpOpts = opts.LP
		}
		sol, err := prob.SolveCtx(ctx, lpOpts)
		if err != nil {
			return nil, fmt.Errorf("opt: %w", err)
		}
		if sol.Status != lp.StatusOptimal {
			return nil, fmt.Errorf("opt: LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
		}
		kRed = sol.K
		iters = sol.Iters
		cleanup(kRed, m)
		if delta > 0 {
			mixUniform(kRed, m, delta)
		}
	}

	// Expand back to the full candidate set.
	k := make([]float64, n*n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			k[x*n+z] = kRed[rep[x]*m+rep[z]] / float64(dupCount[rep[z]])
		}
	}
	ch := &PointChannel{
		Centers: append([]geo.Point(nil), centers...),
		Eps:     eps, Metric: metric, K: k, Iters: iters,
	}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			ch.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	ch.cum = make([]float64, n*n)
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			s += k[x*n+z]
			ch.cum[x*n+z] = s
		}
	}
	return ch, nil
}

// N returns the number of candidate locations.
func (c *PointChannel) N() int { return len(c.Centers) }

// Prob returns K(x)(z).
func (c *PointChannel) Prob(x, z int) float64 { return c.K[x*c.N()+z] }

// SampleIndex draws an output candidate index for input candidate x.
func (c *PointChannel) SampleIndex(x int, rng *rand.Rand) int {
	n := c.N()
	row := c.cum[x*n : (x+1)*n]
	u := rng.Float64() * row[n-1]
	z := sort.SearchFloat64s(row, u)
	if z >= n {
		z = n - 1
	}
	return z
}

// VerifyGeoIndPoints exhaustively checks a channel over arbitrary candidate
// locations against Eq. (1); it returns the maximum log-ratio excess
// (<= 0 means the constraint holds everywhere). Coincident candidates are
// checked with distance 0, i.e. their rows must be identical.
func VerifyGeoIndPoints(centers []geo.Point, eps float64, k []float64) float64 {
	n := len(centers)
	logK := make([]float64, len(k))
	for i, v := range k {
		if v <= 0 {
			logK[i] = math.Inf(-1)
		} else {
			logK[i] = math.Log(v)
		}
	}
	maxExcess := math.Inf(-1)
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			bound := eps * centers[x].Dist(centers[xp])
			for z := 0; z < n; z++ {
				if ex := logK[x*n+z] - logK[xp*n+z] - bound; ex > maxExcess {
					maxExcess = ex
				}
			}
		}
	}
	return maxExcess
}
