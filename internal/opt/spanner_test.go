package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
)

// floydDistances computes all-pairs shortest paths of a spanner edge list.
func floydDistances(pts []geo.Point, edges [][2]int) [][]float64 {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range edges {
		w := pts[e[0]].Dist(pts[e[1]])
		d[e[0]][e[1]] = w
		d[e[1]][e[0]] = w
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

// TestGreedySpannerStretch verifies the defining property: graph distance
// <= stretch * metric distance for every pair.
func TestGreedySpannerStretch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	for _, stretch := range []float64{1.1, 1.5, 2.0} {
		pts := make([]geo.Point, 40)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		edges := GreedySpanner(pts, stretch)
		dg := floydDistances(pts, edges)
		for i := range pts {
			for j := range pts {
				if i == j {
					continue
				}
				want := stretch * pts[i].Dist(pts[j])
				if dg[i][j] > want*(1+1e-9) {
					t.Fatalf("stretch=%g: pair (%d,%d) graph dist %g > %g", stretch, i, j, dg[i][j], want)
				}
			}
		}
	}
}

// TestGreedySpannerSparser: larger stretch produces fewer edges than the
// complete graph, and stretch 1.5 fewer than 1.05.
func TestGreedySpannerSparser(t *testing.T) {
	g := g20(6)
	pts := g.Centers()
	tight := GreedySpanner(pts, 1.05)
	loose := GreedySpanner(pts, 2.0)
	complete := len(pts) * (len(pts) - 1) / 2
	if len(tight) >= complete {
		t.Errorf("stretch 1.05 produced a complete graph (%d edges)", len(tight))
	}
	if len(loose) >= len(tight) {
		t.Errorf("stretch 2.0 (%d edges) not sparser than 1.05 (%d edges)", len(loose), len(tight))
	}
	t.Logf("36 points: complete=%d, stretch1.05=%d, stretch2=%d edges", complete, len(tight), len(loose))
}

func TestBuildSpannerValidation(t *testing.T) {
	g := g20(3)
	w := uniformWeights(9)
	if _, err := BuildSpanner(0, g, w, geo.Euclidean, 1.5, nil); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := BuildSpanner(0.5, g, w, geo.Euclidean, 0.5, nil); err == nil {
		t.Error("stretch<1 should error")
	}
	if _, err := BuildSpanner(0.5, g, w[:4], geo.Euclidean, 1.5, nil); err == nil {
		t.Error("weight mismatch should error")
	}
	if _, err := BuildSpanner(0.5, g, w, geo.Metric(9), 1.5, nil); err == nil {
		t.Error("bad metric should error")
	}
}

// TestBuildSpannerSatisfiesFullGeoInd: the reduced-constraint channel must
// satisfy the FULL set of GeoInd constraints — the whole point of the
// chaining argument.
func TestBuildSpannerSatisfiesFullGeoInd(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	for _, stretch := range []float64{1.2, 1.5, 2.0} {
		g := g20(4)
		w := skewedWeights(16, rng)
		ch, err := BuildSpanner(0.5, g, w, geo.Euclidean, stretch, nil)
		if err != nil {
			t.Fatalf("stretch=%g: %v", stretch, err)
		}
		if ex := VerifyGeoInd(g, 0.5, ch.K); ex > 1e-6 {
			t.Errorf("stretch=%g: full GeoInd violated by %g", stretch, ex)
		}
		if e := RowSumError(16, ch.K); e > 1e-9 {
			t.Errorf("stretch=%g: row sum error %g", stretch, e)
		}
	}
}

// TestBuildSpannerConservative: the spanner channel is feasible for the full
// LP, so its expected loss is >= OPT's, and approaches it as stretch -> 1.
func TestBuildSpannerConservative(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 4))
	g := g20(4)
	w := skewedWeights(16, rng)
	full, err := Build(0.5, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, stretch := range []float64{2.0, 1.5, 1.1} {
		ch, err := BuildSpanner(0.5, g, w, geo.Euclidean, stretch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ch.ExpectedLoss < full.ExpectedLoss-1e-6 {
			t.Errorf("stretch=%g: spanner loss %g below OPT %g", stretch, ch.ExpectedLoss, full.ExpectedLoss)
		}
		if ch.ExpectedLoss > prev+1e-6 {
			t.Errorf("stretch=%g: loss %g worse than looser stretch %g", stretch, ch.ExpectedLoss, prev)
		}
		prev = ch.ExpectedLoss
	}
	// The loss premium at stretch 1.1 is bounded (every edge budget is
	// scaled by 1/1.1, so the channel is at worst the optimum for a ~9%
	// smaller eps plus discretization effects).
	if prev > full.ExpectedLoss*1.3 {
		t.Errorf("stretch 1.1 loss %g too far above OPT %g", prev, full.ExpectedLoss)
	}
	// As stretch -> 1 the formulation converges to the full LP.
	almost, err := BuildSpanner(0.5, g, w, geo.Euclidean, 1.001, nil)
	if err != nil {
		t.Fatal(err)
	}
	if almost.ExpectedLoss > full.ExpectedLoss*1.02 {
		t.Errorf("stretch 1.001 loss %g did not converge to OPT %g", almost.ExpectedLoss, full.ExpectedLoss)
	}
}

// TestBuildSpannerFewerConstraints: the constraint families shrink.
func TestBuildSpannerFewerConstraints(t *testing.T) {
	g := g20(5)
	w := uniformWeights(25)
	full, err := Build(0.5, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := BuildSpanner(0.5, g, w, geo.Euclidean, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PairFamilies >= full.PairFamilies {
		t.Errorf("spanner families %d not fewer than full %d", sp.PairFamilies, full.PairFamilies)
	}
	t.Logf("constraint families: full=%d spanner(1.5)=%d", full.PairFamilies, sp.PairFamilies)
}
