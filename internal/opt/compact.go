package opt

import (
	"fmt"
	"math"
	"math/rand/v2"

	"geoind/internal/geo"
)

// Compact (pruned) channel representation.
//
// A solved channel row concentrates almost all its mass near the diagonal
// (rho ≈ 0.8 sits on the diagonal alone), yet the dense representation pays
// 16 bytes per entry (K + cum) for every one of the n² entries. Pruning
// drops per-row entries below a mass cutoff and stores the survivors as
// (index, prob) pairs — but naively renormalizing a row breaks tight GeoInd
// constraints, so the construction here extends the strict-positivity
// post-mix argument of the package comment to pruning:
//
// Given the post-mix channel K, a total prune budget t = pruneMass per row
// and the per-entry cutoff c = t/n, let T_x = {z : K[x][z] ≥ c} be the kept
// set of row x and m_x = Σ_{z∉T_x} K[x][z] ≤ n·c = t the pruned mass. The
// compact channel is the convex mixture
//
//	K'[x][z] = (1-β)·K[x][z]·1[z∈T_x] + u_x,   u_x = (β + (1-β)·m_x)/n
//
// i.e. the pruned row with its deficit poured into a per-row uniform
// background. Rows sum to one exactly, every entry is ≥ β/n > 0, and with
//
//	β ≥ q/(1+q),   q = t·(B+1)/(B-1),   B = e^{eps·dmin}
//
// (dmin the minimum distance between distinct candidates) every GeoInd
// constraint still holds: writing B(x,x') = e^{eps·d(x,x')} ≥ B, the four
// kept/pruned cases of K'[x][z]/K'[x'][z] are bounded by the mediant
// inequality — both-kept by max(B(x,x'), u_x/u_x'), kept-over-pruned by
// 1 + (1-β)·t·(B(x,x')+1)/β ≤ B(x,x'), and the remaining two by u_x/u_x'
// ≤ 1 + (1-β)·t/β < B. The bound is exact, not asymptotic; Prune still
// re-runs the O(n³) verifier on the materialized result and refuses to
// return a channel that fails it, so float rounding can never ship an
// ε-violating matrix.
//
// The expected-loss penalty is equally explicit: at most (β + (1-β)·t) of
// each row's mass moves, by at most the domain diameter, so
// |loss' - loss| ≤ (β + t)·max_z dQ(x,z). Prune recomputes the exact loss
// under the supplied prior rather than relying on the bound.

// MaxPruneMass bounds Prune's per-row mass budget: past it the forced
// background weight β dwarfs any representation savings.
const MaxPruneMass = 0.5

// pruneVerifyTol is the acceptance threshold for the post-prune GeoInd
// re-verification. The construction satisfies the constraints exactly in
// real arithmetic; a small positive excess can only come from float64
// rounding of ln/exp in the verifier itself.
const pruneVerifyTol = 1e-9

// sparseRows is the compact channel matrix: per row, the kept entries as
// (column index, scaled probability) pairs in CSR layout plus the uniform
// background level u_x. The stored value is the FULL mixture weight of the
// kept entry minus the background, i.e. (1-β)·K[x][z]; the effective
// probability of a kept column is val + bg[x], of a pruned column bg[x].
type sparseRows struct {
	n         int
	beta      float64
	pruneMass float64
	rowStart  []int32   // n+1 offsets into idx/val/cum
	idx       []int32   // kept column indices, strictly increasing per row
	val       []float64 // (1-beta) * K[x][z] for kept entries
	bg        []float64 // per-row background level u_x ≥ beta/n
	bgMass    []float64 // n * u_x, the total background mass of the row
	cum       []float64 // per-row prefix sums of val (reference sampler)
}

// finish derives bgMass and cum from the primary fields; called by both the
// pruner and the snapshot decoder so loaded channels sample bit-identically
// to the channels they mirror.
func (s *sparseRows) finish() {
	s.bgMass = make([]float64, s.n)
	s.cum = make([]float64, len(s.val))
	for x := 0; x < s.n; x++ {
		s.bgMass[x] = float64(s.n) * s.bg[x]
		acc := 0.0
		for j := s.rowStart[x]; j < s.rowStart[x+1]; j++ {
			acc += s.val[j]
			s.cum[j] = acc
		}
	}
}

// entries returns the number of kept (index, prob) pairs.
func (s *sparseRows) entries() int { return len(s.val) }

// costBytes is the resident footprint of the sampling-critical state.
func (s *sparseRows) costBytes() int64 {
	return int64(len(s.val))*(8+8+4) + // val + cum + idx
		int64(len(s.bg)+len(s.bgMass))*8 + int64(len(s.rowStart))*4
}

// prob returns the effective probability K'[x][z].
func (s *sparseRows) prob(x, z int) float64 {
	lo, hi := int(s.rowStart[x]), int(s.rowStart[x+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := int(s.idx[mid]); {
		case c == z:
			return s.val[mid] + s.bg[x]
		case c < z:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return s.bg[x]
}

// appendRow materializes row x (background included) into dst.
func (s *sparseRows) appendRow(dst []float64, x int) []float64 {
	start := len(dst)
	for z := 0; z < s.n; z++ {
		dst = append(dst, s.bg[x])
	}
	row := dst[start:]
	for j := s.rowStart[x]; j < s.rowStart[x+1]; j++ {
		row[s.idx[j]] += s.val[j]
	}
	return dst
}

// dense materializes the full n x n matrix.
func (s *sparseRows) dense() []float64 {
	out := make([]float64, 0, s.n*s.n)
	for x := 0; x < s.n; x++ {
		out = s.appendRow(out, x)
	}
	return out
}

// uniformIndex draws a uniform column index from one extra rng draw.
func (s *sparseRows) uniformIndex(rng *rand.Rand) int {
	z := int(rng.Float64() * float64(s.n))
	if z >= s.n {
		z = s.n - 1
	}
	return z
}

// sampleRef is the compact reference sampler: one uniform decides background
// vs kept (the background branch takes a second uniform for the column, the
// kept branch binary-searches the row's val prefix sums with the residual
// u - bgMass, which gives every kept entry exactly its val mass). O(log kept).
func (s *sparseRows) sampleRef(x int, rng *rand.Rand) int {
	u := rng.Float64()
	if u < s.bgMass[x] {
		return s.uniformIndex(rng)
	}
	lo, hi := s.rowStart[x], s.rowStart[x+1]
	if lo == hi {
		// Fully pruned row: bgMass ≈ 1, reachable only through float
		// rounding. The row is uniform either way.
		return s.uniformIndex(rng)
	}
	j := searchCum(s.cum[lo:hi], u-s.bgMass[x])
	return int(s.idx[int(lo)+j])
}

// sparseRefSampler adapts sampleRef to the Sampler interface.
type sparseRefSampler struct{ s *sparseRows }

func (r sparseRefSampler) Sample(x int, rng *rand.Rand) int { return r.s.sampleRef(x, rng) }

// sparseAlias is the O(1) sampler for compact rows: the same background
// branch as sampleRef, with the kept branch served by a per-row alias table
// over the kept entries instead of a binary search.
type sparseAlias struct {
	s     *sparseRows
	prob  []float64 // aligned with s.val
	alias []int32   // row-local alias targets
}

func newSparseAlias(s *sparseRows) *sparseAlias {
	a := &sparseAlias{s: s, prob: make([]float64, len(s.val)), alias: make([]int32, len(s.val))}
	maxRow := 0
	for x := 0; x < s.n; x++ {
		if c := int(s.rowStart[x+1] - s.rowStart[x]); c > maxRow {
			maxRow = c
		}
	}
	scaled := make([]float64, maxRow)
	small := make([]int32, 0, maxRow)
	large := make([]int32, 0, maxRow)
	for x := 0; x < s.n; x++ {
		lo, hi := s.rowStart[x], s.rowStart[x+1]
		if lo == hi {
			continue
		}
		buildAliasRow(s.val[lo:hi], a.prob[lo:hi], a.alias[lo:hi], scaled[:hi-lo], &small, &large)
	}
	return a
}

func (a *sparseAlias) Sample(x int, rng *rand.Rand) int {
	s := a.s
	u := rng.Float64()
	if u < s.bgMass[x] {
		return s.uniformIndex(rng)
	}
	lo, hi := int(s.rowStart[x]), int(s.rowStart[x+1])
	cnt := hi - lo
	if cnt == 0 {
		return s.uniformIndex(rng)
	}
	v := rng.Float64() * float64(cnt)
	i := int(v)
	if i >= cnt {
		i = cnt - 1
	}
	if v-float64(i) >= a.prob[lo+i] {
		i = int(a.alias[lo+i])
	}
	return int(s.idx[lo+i])
}

// pruneBeta computes the smallest safe background weight β for a prune
// budget t over candidates with minimum distinct-pair distance dmin.
func pruneBeta(eps, t, dmin float64) (float64, error) {
	if !(dmin > 0) {
		return 0, fmt.Errorf("opt: prune: no distinct candidate pair (dmin=%g)", dmin)
	}
	b := math.Exp(eps * dmin)
	if math.IsInf(b, 0) {
		// eps*dmin overflow: any β works; keep it tiny.
		return t, nil
	}
	q := t * (b + 1) / (b - 1)
	beta := q / (1 + q)
	// Headroom for float rounding in the mixture arithmetic; the verifier
	// gate is the final arbiter.
	beta *= 1 + 1e-9
	if !(beta > 0) || beta >= MaxPruneMass {
		return 0, fmt.Errorf("opt: prune: required background weight beta=%.3g out of range (eps*dmin=%.3g too small for prune mass %g)",
			beta, eps*dmin, t)
	}
	return beta, nil
}

// minPairDist returns the minimum distance between distinct candidate
// positions (coincident candidates are skipped: their rows are identical
// and prune identically, so they impose no constraint on β).
func minPairDist(centers []geo.Point) float64 {
	dmin := math.Inf(1)
	for i := range centers {
		for j := i + 1; j < len(centers); j++ {
			if d := centers[i].Dist(centers[j]); d > 0 && d < dmin {
				dmin = d
			}
		}
	}
	return dmin
}

// pruneMatrix builds the compact representation of a dense row-stochastic
// matrix under the β-background construction above. It does NOT verify
// GeoInd — callers (Channel.Prune, PointChannel.Prune) run the appropriate
// verifier on the materialized result and reject on any excess.
func pruneMatrix(n int, k []float64, eps, pruneMass, dmin float64) (*sparseRows, error) {
	if !(pruneMass > 0) || pruneMass >= MaxPruneMass {
		return nil, fmt.Errorf("opt: prune mass %g outside (0, %g)", pruneMass, MaxPruneMass)
	}
	beta, err := pruneBeta(eps, pruneMass, dmin)
	if err != nil {
		return nil, err
	}
	cutoff := pruneMass / float64(n)
	s := &sparseRows{
		n: n, beta: beta, pruneMass: pruneMass,
		rowStart: make([]int32, n+1),
		bg:       make([]float64, n),
	}
	for x := 0; x < n; x++ {
		row := k[x*n : (x+1)*n]
		pruned := 0.0
		for z, v := range row {
			if v < cutoff {
				pruned += v
				continue
			}
			s.idx = append(s.idx, int32(z))
			s.val = append(s.val, (1-beta)*v)
		}
		s.rowStart[x+1] = int32(len(s.idx))
		s.bg[x] = (beta + (1-beta)*pruned) / float64(n)
	}
	s.finish()
	return s, nil
}

// expectedLossSparse computes Σ_x π_x Σ_z K'[x][z] dQ(x,z) exactly for the
// compact matrix (kept entries plus the uniform background term).
func expectedLossSparse(s *sparseRows, centers []geo.Point, pi []float64, metric geo.Metric) float64 {
	loss := 0.0
	for x := 0; x < s.n; x++ {
		if pi[x] == 0 {
			continue
		}
		rowLoss := 0.0
		bgLoss := 0.0
		for z := 0; z < s.n; z++ {
			bgLoss += metric.Loss(centers[x], centers[z])
		}
		rowLoss += s.bg[x] * bgLoss
		for j := s.rowStart[x]; j < s.rowStart[x+1]; j++ {
			rowLoss += s.val[j] * metric.Loss(centers[x], centers[int(s.idx[j])])
		}
		loss += pi[x] * rowLoss
	}
	return loss
}

// normalizedOrUniform normalizes prior weights, falling back to uniform when
// weights are absent or degenerate.
func normalizedOrUniform(n int, weights []float64) []float64 {
	pi := make([]float64, n)
	if len(weights) == n {
		total := 0.0
		valid := true
		for _, w := range weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				valid = false
				break
			}
			total += w
		}
		if valid && total > 0 {
			for i, w := range weights {
				pi[i] = w / total
			}
			return pi
		}
	}
	u := 1 / float64(n)
	for i := range pi {
		pi[i] = u
	}
	return pi
}

// Prune returns a compact copy of the channel: per-row entries below
// pruneMass/n are dropped and their mass, together with a forced background
// weight β, is spread uniformly over the row (the ε-preserving construction
// in the file comment). The dense matrix is discarded (K is nil on the
// result); Row/DenseK materialize rows on demand. ExpectedLoss is recomputed
// exactly under priorWeights (uniform when nil). The result is re-verified
// with VerifyGeoInd before it is returned; any excess beyond float rounding
// yields an error and the caller should keep the dense channel.
func (c *Channel) Prune(pruneMass float64, priorWeights []float64) (*Channel, error) {
	if c.sparse != nil {
		return nil, fmt.Errorf("opt: channel is already compact")
	}
	n := c.N()
	w, h := c.Grid.CellSize()
	dmin := math.Min(w, h)
	s, err := pruneMatrix(n, c.K, c.Eps, pruneMass, dmin)
	if err != nil {
		return nil, err
	}
	out := &Channel{
		Grid: c.Grid, Eps: c.Eps, Metric: c.Metric,
		Iters: c.Iters, PairFamilies: c.PairFamilies,
	}
	out.initSparse(s)
	centers := c.Grid.Centers()
	out.ExpectedLoss = expectedLossSparse(s, centers, normalizedOrUniform(n, priorWeights), c.Metric)
	if ex := VerifyGeoInd(c.Grid, c.Eps, s.dense()); ex > pruneVerifyTol {
		return nil, fmt.Errorf("opt: pruned channel fails GeoInd re-verification (excess %.3g)", ex)
	}
	return out, nil
}

// Prune is the PointChannel counterpart of Channel.Prune; dmin is the
// minimum distance between distinct candidate positions and the gate is
// VerifyGeoIndPoints (coincident candidates prune identically, so their
// exact row-equality constraint survives by construction).
func (c *PointChannel) Prune(pruneMass float64, priorWeights []float64) (*PointChannel, error) {
	if c.sparse != nil {
		return nil, fmt.Errorf("opt: channel is already compact")
	}
	n := c.N()
	s, err := pruneMatrix(n, c.K, c.Eps, pruneMass, minPairDist(c.Centers))
	if err != nil {
		return nil, err
	}
	out := &PointChannel{
		Centers: c.Centers, Eps: c.Eps, Metric: c.Metric, Iters: c.Iters,
	}
	out.initSparse(s)
	out.ExpectedLoss = expectedLossSparse(s, c.Centers, normalizedOrUniform(n, priorWeights), c.Metric)
	if ex := VerifyGeoIndPoints(c.Centers, c.Eps, s.dense()); ex > pruneVerifyTol {
		return nil, fmt.Errorf("opt: pruned channel fails GeoInd re-verification (excess %.3g)", ex)
	}
	return out, nil
}
