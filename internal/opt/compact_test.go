package opt

import (
	"context"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// pruneTestChannel solves a small grid channel with a skewed prior.
func pruneTestChannel(t *testing.T, granularity int, eps float64) (*Channel, []float64) {
	t.Helper()
	g, err := grid.New(geo.Rect{MaxX: 10, MaxY: 10}, granularity)
	if err != nil {
		t.Fatal(err)
	}
	pw := make([]float64, g.NumCells())
	for i := range pw {
		pw[i] = float64(i%4 + 1)
	}
	ch, err := Build(eps, g, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ch, pw
}

// maxMetricLoss returns max over all candidate pairs of dQ — the diameter
// term in the pruning loss bound.
func maxMetricLoss(centers []geo.Point, metric geo.Metric) float64 {
	worst := 0.0
	for _, a := range centers {
		for _, b := range centers {
			if l := metric.Loss(a, b); l > worst {
				worst = l
			}
		}
	}
	return worst
}

// TestPrunePropertiesGrid checks the construction invariants of Channel.Prune
// across grid sizes, privacy budgets and prune masses: the compact channel
// still satisfies every GeoInd constraint, its rows are exactly stochastic
// with a strictly positive floor, and its expected loss moved by no more than
// the analytical (beta + pruneMass) x diameter bound.
func TestPrunePropertiesGrid(t *testing.T) {
	for _, tc := range []struct {
		granularity int
		eps         float64
		mass        float64
	}{
		{3, 0.7, 0.05},
		{3, 1.5, 0.2},
		{4, 1.0, 0.1},
	} {
		ch, pw := pruneTestChannel(t, tc.granularity, tc.eps)
		compact, err := ch.Prune(tc.mass, pw)
		if err != nil {
			t.Fatalf("g=%d eps=%g mass=%g: %v", tc.granularity, tc.eps, tc.mass, err)
		}
		if !compact.IsCompact() || compact.K != nil {
			t.Fatal("pruned channel is not compact")
		}
		if ex := compact.VerifyMaxExcess(); ex > pruneVerifyTol {
			t.Fatalf("pruned channel violates GeoInd: excess %g", ex)
		}

		n := compact.N()
		s := compact.sparse
		floor := s.beta / float64(n) * (1 - 1e-12)
		for x := 0; x < n; x++ {
			sum := 0.0
			for z := 0; z < n; z++ {
				p := compact.Prob(x, z)
				if p < floor {
					t.Fatalf("row %d col %d: prob %g below background floor %g", x, z, p, floor)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d sums to %g", x, sum)
			}
		}

		bound := (s.beta + tc.mass) * maxMetricLoss(ch.Grid.Centers(), ch.Metric)
		if delta := math.Abs(compact.ExpectedLoss - ch.ExpectedLoss); delta > bound {
			t.Fatalf("loss moved by %g, bound %g", delta, bound)
		}
		if s.entries() >= n*n {
			t.Fatalf("pruning kept all %d entries", s.entries())
		}
	}
}

// TestPrunePropertiesPoints is the PointChannel counterpart, over an
// irregular candidate set.
func TestPrunePropertiesPoints(t *testing.T) {
	centers := []geo.Point{
		{X: 0, Y: 0}, {X: 1.5, Y: 0.2}, {X: 3, Y: 2.4}, {X: 4.2, Y: 0.7},
		{X: 0.4, Y: 3.1}, {X: 2.2, Y: 4}, {X: 5, Y: 5}, {X: 1, Y: 1.8},
	}
	pw := []float64{5, 1, 3, 1, 2, 4, 1, 2}
	ch, err := BuildPoints(1.2, centers, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := ch.Prune(0.1, pw)
	if err != nil {
		t.Fatal(err)
	}
	if !compact.IsCompact() {
		t.Fatal("pruned channel is not compact")
	}
	if ex := compact.VerifyMaxExcess(); ex > pruneVerifyTol {
		t.Fatalf("pruned point channel violates GeoInd: excess %g", ex)
	}
	n := compact.N()
	for x := 0; x < n; x++ {
		sum := 0.0
		for _, p := range compact.Row(x) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", x, sum)
		}
	}
	bound := (compact.sparse.beta + 0.1) * maxMetricLoss(centers, ch.Metric)
	if delta := math.Abs(compact.ExpectedLoss - ch.ExpectedLoss); delta > bound {
		t.Fatalf("loss moved by %g, bound %g", delta, bound)
	}
}

// TestPruneErrors covers the refusal paths: out-of-range masses, masses the
// privacy budget cannot absorb, and double pruning.
func TestPruneErrors(t *testing.T) {
	ch, pw := pruneTestChannel(t, 3, 0.7)

	for _, mass := range []float64{0, -0.1, MaxPruneMass, 0.9} {
		if _, err := ch.Prune(mass, pw); err == nil {
			t.Errorf("mass %g: expected error", mass)
		}
	}

	// eps*dmin near zero forces beta -> 1: the budget cannot absorb the
	// background and Prune must refuse rather than weaken the channel.
	tiny, err := Build(0.01, ch.Grid, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Prune(0.3, pw); err == nil {
		t.Error("expected beta-out-of-range error for eps=0.01")
	} else if !strings.Contains(err.Error(), "beta") {
		t.Errorf("unexpected error: %v", err)
	}

	compact, err := ch.Prune(0.05, pw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compact.Prune(0.05, pw); err == nil {
		t.Error("double prune: expected error")
	}
}

// TestCompactSnapshotRoundTrip encodes a pruned channel, decodes it, and
// requires the result to be indistinguishable from the original: identical
// probabilities, identical cost accounting, and a bit-identical reference
// sampling stream (the warm-restart criterion extended to compact channels).
func TestCompactSnapshotRoundTrip(t *testing.T) {
	ch, pw := pruneTestChannel(t, 3, 1.5)
	compact, err := ch.Prune(0.2, pw)
	if err != nil {
		t.Fatal(err)
	}
	codec := SnapshotCodec{}
	data, err := codec.Encode(compact)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(dense) {
		t.Fatalf("compact snapshot (%d B) not smaller than dense (%d B)", len(data), len(dense))
	}

	v, err := codec.Decode(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*Channel)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if !got.IsCompact() {
		t.Fatal("decoded channel lost compactness")
	}
	if got.ExpectedLoss != compact.ExpectedLoss || got.Eps != compact.Eps {
		t.Fatal("scalar fields differ")
	}
	if SnapshotCost(got) != SnapshotCost(compact) {
		t.Fatalf("cost differs: %d vs %d", SnapshotCost(got), SnapshotCost(compact))
	}
	n := compact.N()
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			if got.Prob(x, z) != compact.Prob(x, z) {
				t.Fatalf("Prob(%d,%d) not bit-equal", x, z)
			}
		}
	}
	rngA := rand.New(rand.NewPCG(7, 8))
	rngB := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 500; i++ {
		x := i % n
		if a, b := compact.SampleIndex(x, rngA), got.SampleIndex(x, rngB); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
}

// TestCompactPointSnapshotRoundTrip is the PointChannel counterpart.
func TestCompactPointSnapshotRoundTrip(t *testing.T) {
	centers := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0.5}, {X: 2.5, Y: 3}, {X: 4, Y: 1}, {X: 3.3, Y: 4.4}}
	pw := []float64{1, 2, 3, 4, 5}
	ch, err := BuildPoints(1.1, centers, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := ch.Prune(0.08, pw)
	if err != nil {
		t.Fatal(err)
	}
	codec := SnapshotCodec{}
	data, err := codec.Encode(compact)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*PointChannel)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if !got.IsCompact() {
		t.Fatal("decoded channel lost compactness")
	}
	n := compact.N()
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			if got.Prob(x, z) != compact.Prob(x, z) {
				t.Fatalf("Prob(%d,%d) not bit-equal", x, z)
			}
		}
	}
	rngA := rand.New(rand.NewPCG(3, 4))
	rngB := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 300; i++ {
		x := i % n
		if a, b := compact.SampleIndex(x, rngA), got.SampleIndex(x, rngB); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
}
