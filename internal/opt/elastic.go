package opt

import (
	"container/heap"
	"fmt"
	"math"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
)

// ElasticMetric builds a location-dependent distinguishability metric in the
// spirit of Chatzikokolakis, Palamidessi and Stronati (PoPETS 2015 —
// reference [6] of the paper, the work that introduced the
// distinguishability-metric view GeoInd builds on). Instead of the uniform
// level eps*d(x, x'), each cell carries a sensitivity factor in (0, 1]: the
// metric is the shortest-path distance over the 8-neighbour grid graph with
// edge weights
//
//	w(u, v) = eps * d(u, v) * min(sens[u], sens[v]),
//
// so paths through sensitive areas (hospitals, clinics, places of worship —
// factor < 1) accumulate distinguishability more slowly, forcing any
// mechanism constrained by the metric to blur those areas more. A factor of
// 1 everywhere recovers (the octile approximation of) the standard metric.
//
// The result is a full n x n matrix ell with ell[x*n+xp] the
// distinguishability level between cells x and xp; it is symmetric, zero on
// the diagonal, and satisfies the triangle inequality by construction.
func ElasticMetric(g *grid.Grid, eps float64, sensitivity []float64) ([]float64, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: elastic: eps=%g must be positive and finite", eps)
	}
	n := g.NumCells()
	if len(sensitivity) != n {
		return nil, fmt.Errorf("opt: elastic: %d sensitivities for %d cells", len(sensitivity), n)
	}
	for i, s := range sensitivity {
		if !(s > 0 && s <= 1) {
			return nil, fmt.Errorf("opt: elastic: sensitivity[%d]=%g outside (0,1]", i, s)
		}
	}
	gg := g.Granularity()
	centers := g.Centers()
	// Adjacency: 8 neighbours.
	type edge struct {
		to int
		w  float64
	}
	adj := make([][]edge, n)
	for r := 0; r < gg; r++ {
		for c := 0; c < gg; c++ {
			u := g.Index(r, c)
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= gg || nc < 0 || nc >= gg {
						continue
					}
					v := g.Index(nr, nc)
					w := eps * centers[u].Dist(centers[v]) * math.Min(sensitivity[u], sensitivity[v])
					adj[u] = append(adj[u], edge{to: v, w: w})
				}
			}
		}
	}
	ell := make([]float64, n*n)
	dist := make([]float64, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		pq := &spHeap{{node: src, d: 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(spItem)
			if it.d > dist[it.node] {
				continue
			}
			for _, e := range adj[it.node] {
				if nd := it.d + e.w; nd < dist[e.to] {
					dist[e.to] = nd
					heap.Push(pq, spItem{node: e.to, d: nd})
				}
			}
		}
		copy(ell[src*n:(src+1)*n], dist)
	}
	return ell, nil
}

// BuildMetric solves the optimal-mechanism LP under an arbitrary
// distinguishability matrix ell (as produced by ElasticMetric): constraints
// K(x)(z) <= exp(ell[x][xp]) * K(xp)(z) for all pairs and outputs, expected
// loss minimized for the prior under dQ. Build is the special case
// ell[x][xp] = eps * d(x, xp).
func BuildMetric(ell []float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, opts *Options) (*Channel, error) {
	n := g.NumCells()
	if len(ell) != n*n {
		return nil, fmt.Errorf("opt: metric matrix size %d for %d cells", len(ell), n)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	for i, l := range ell {
		if l < 0 || math.IsNaN(l) {
			return nil, fmt.Errorf("opt: metric entry %d is %g", i, l)
		}
	}
	centers := g.Centers()
	delta := (opts).mixDelta()
	dropTol := 0.0
	if delta > 0 {
		dropTol = delta / float64(n)
	}
	prob := &lp.GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			prob.Obj[x*n+z] = pi[x] * metric.Loss(centers[x], centers[z])
		}
	}
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			coef := math.Exp(-ell[x*n+xp])
			if coef <= dropTol {
				continue
			}
			if coef > 1 {
				coef = 1 // ell ~ 0 within rounding
			}
			prob.Pairs = append(prob.Pairs, lp.Pair{X: x, Xp: xp, Coef: coef})
		}
	}
	var lpOpts *lp.IPMOptions
	if opts != nil {
		lpOpts = opts.LP
	}
	sol, err := prob.Solve(lpOpts)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("opt: metric LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
	}
	k := sol.K
	cleanup(k, n)
	if delta > 0 {
		mixUniform(k, n, delta)
	}
	ch := &Channel{Grid: g, Eps: math.NaN(), Metric: metric, K: k, Iters: sol.Iters, PairFamilies: len(prob.Pairs)}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			ch.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	ch.buildCum()
	return ch, nil
}

// VerifyMetricInd checks a channel against an arbitrary distinguishability
// matrix: it returns the maximum of ln K(x)(z) - ln K(xp)(z) - ell[x][xp]
// over all pairs and outputs (<= 0 means the guarantee holds).
func VerifyMetricInd(n int, ell, k []float64) float64 {
	logK := make([]float64, len(k))
	for i, v := range k {
		if v <= 0 {
			logK[i] = math.Inf(-1)
		} else {
			logK[i] = math.Log(v)
		}
	}
	worst := math.Inf(-1)
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			bound := ell[x*n+xp]
			for z := 0; z < n; z++ {
				if ex := logK[x*n+z] - logK[xp*n+z] - bound; ex > worst {
					worst = ex
				}
			}
		}
	}
	return worst
}
