package opt

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

func snapshotTestChannel(t *testing.T) *Channel {
	t.Helper()
	g, err := grid.New(geo.Rect{MaxX: 10, MaxY: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pw := make([]float64, g.NumCells())
	for i := range pw {
		pw[i] = float64(i + 1)
	}
	ch, err := Build(0.7, g, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestSnapshotCodecChannelRoundTrip(t *testing.T) {
	ch := snapshotTestChannel(t)
	codec := SnapshotCodec{}
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*Channel)
	if !ok {
		t.Fatalf("decoded %T", v)
	}

	if got.Eps != ch.Eps || got.Metric != ch.Metric || got.ExpectedLoss != ch.ExpectedLoss ||
		got.Iters != ch.Iters || got.PairFamilies != ch.PairFamilies {
		t.Fatalf("scalar fields differ: %+v vs %+v", got, ch)
	}
	if got.Grid.Bounds() != ch.Grid.Bounds() || got.Grid.NumCells() != ch.Grid.NumCells() {
		t.Fatal("grid geometry differs")
	}
	for i := range ch.K {
		if got.K[i] != ch.K[i] {
			t.Fatalf("K[%d]: %v vs %v (not bit-equal)", i, got.K[i], ch.K[i])
		}
	}
	for i := range ch.cum {
		if got.cum[i] != ch.cum[i] {
			t.Fatalf("cum[%d]: %v vs %v (not bit-equal)", i, got.cum[i], ch.cum[i])
		}
	}

	// Bit-equal cum rows mean the sampled index sequence is identical for the
	// same RNG stream — the warm-restart acceptance criterion.
	rngA := rand.New(rand.NewPCG(11, 22))
	rngB := rand.New(rand.NewPCG(11, 22))
	n := ch.N()
	for i := 0; i < 500; i++ {
		x := i % n
		if a, b := ch.SampleIndex(x, rngA), got.SampleIndex(x, rngB); a != b {
			t.Fatalf("draw %d: original sampled %d, decoded sampled %d", i, a, b)
		}
	}
}

func TestSnapshotCodecPointChannelRoundTrip(t *testing.T) {
	centers := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0.5}, {X: 2.5, Y: 3}, {X: 4, Y: 1}}
	pw := []float64{1, 2, 3, 4}
	ch, err := BuildPoints(0.9, centers, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	codec := SnapshotCodec{}
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*PointChannel)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.Eps != ch.Eps || got.Metric != ch.Metric || got.ExpectedLoss != ch.ExpectedLoss || got.Iters != ch.Iters {
		t.Fatal("scalar fields differ")
	}
	for i := range ch.Centers {
		if got.Centers[i] != ch.Centers[i] {
			t.Fatalf("center %d differs", i)
		}
	}
	for i := range ch.K {
		if got.K[i] != ch.K[i] || got.cum[i] != ch.cum[i] {
			t.Fatalf("matrix entry %d not bit-equal", i)
		}
	}
	rngA := rand.New(rand.NewPCG(5, 6))
	rngB := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		x := i % len(centers)
		if a, b := ch.SampleIndex(x, rngA), got.SampleIndex(x, rngB); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestSnapshotCodecRejectsGarbage(t *testing.T) {
	codec := SnapshotCodec{}
	ch := snapshotTestChannel(t)
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":        nil,
		"unknown-kind": {0xee, 1, 2, 3},
		"truncated":    data[:len(data)/2],
		"trailing":     append(append([]byte(nil), data...), 0),
	}
	for name, payload := range cases {
		if _, err := codec.Decode(context.Background(), payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestSnapshotCodecRejectsTamperedMatrix(t *testing.T) {
	codec := SnapshotCodec{}
	ch := snapshotTestChannel(t)
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}

	// Flip an exponent bit of the final K entry: the row no longer sums to
	// (approximately) 1 and the decoder's row-sum check must notice.
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)-1] ^= 0x40
	if _, err := codec.Decode(context.Background(), tampered); err == nil {
		t.Fatal("accepted a K row that does not sum to 1")
	}

	// A NaN in K must be rejected by the finiteness check. K starts right
	// after the fixed header; overwrite its first entry.
	nan := append([]byte(nil), data...)
	idx := snapshotKOffset(t, codec, ch)
	putFloatLE(nan[idx:], math.NaN())
	if _, err := codec.Decode(context.Background(), nan); err == nil {
		t.Fatal("accepted NaN in K")
	}
}

// snapshotKOffset locates the first K entry in an encoded grid snapshot by
// re-encoding with a sentinel value and diffing.
func snapshotKOffset(t *testing.T, codec SnapshotCodec, ch *Channel) int {
	t.Helper()
	orig, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}
	mod := &Channel{
		Grid: ch.Grid, Eps: ch.Eps, Metric: ch.Metric,
		ExpectedLoss: ch.ExpectedLoss, Iters: ch.Iters, PairFamilies: ch.PairFamilies,
		K: append([]float64(nil), ch.K...),
	}
	mod.K[0] = math.Float64frombits(math.Float64bits(ch.K[0]) ^ 1)
	data, err := codec.Encode(mod)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] != data[i] {
			// The sentinel flips the float's lowest mantissa bit, so the first
			// differing byte is the little-endian float's first byte.
			return i
		}
	}
	t.Fatal("sentinel not found")
	return 0
}

func putFloatLE(b []byte, f float64) {
	bits := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

func TestSnapshotCost(t *testing.T) {
	ch := snapshotTestChannel(t)
	want := int64(len(ch.K)+len(ch.cum)) * 8
	if got := SnapshotCost(ch); got != want {
		t.Fatalf("SnapshotCost(Channel) = %d, want %d", got, want)
	}
	if got := SnapshotCost("not a channel"); got != 1 {
		t.Fatalf("SnapshotCost(foreign) = %d, want 1", got)
	}
}

func snapshotLocalChannel(t *testing.T) *Channel {
	t.Helper()
	g, err := grid.New(geo.NewSquare(8), 6)
	if err != nil {
		t.Fatal(err)
	}
	// Two-cluster prior so the relevance domain is a proper subset and
	// several rows are snapped copies.
	pw := make([]float64, g.NumCells())
	pw[g.Index(1, 1)] = 5
	pw[g.Index(1, 2)] = 3
	pw[g.Index(4, 4)] = 4
	ch, err := BuildLocal(0.8, g, pw, geo.Euclidean, 1.8, &LocalOptions{MassFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ch.LocalDomain()); n == 0 || n >= g.NumCells() {
		t.Fatalf("test channel domain %d of %d cells is not a proper subset", n, g.NumCells())
	}
	return ch
}

func TestSnapshotCodecLocalRoundTrip(t *testing.T) {
	ch := snapshotLocalChannel(t)
	codec := SnapshotCodec{}
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*Channel)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if !got.IsLocal() || !got.IsCompact() {
		t.Fatal("decoded channel lost its local/compact marking")
	}
	da, db := ch.LocalDomain(), got.LocalDomain()
	if len(da) != len(db) {
		t.Fatalf("domain sizes differ: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("domain differs at %d", i)
		}
	}
	if got.Eps != ch.Eps || got.Metric != ch.Metric || got.ExpectedLoss != ch.ExpectedLoss ||
		got.Iters != ch.Iters || got.PairFamilies != ch.PairFamilies {
		t.Fatal("scalar fields differ")
	}
	n := ch.N()
	for x := 0; x < n; x++ {
		rx, ry := ch.Row(x), got.Row(x)
		for z := 0; z < n; z++ {
			if rx[z] != ry[z] {
				t.Fatalf("row %d col %d not bit-equal", x, z)
			}
		}
	}
	// Bit-equal sparse rows mean identical draw streams after a reload.
	rngA := rand.New(rand.NewPCG(7, 9))
	rngB := rand.New(rand.NewPCG(7, 9))
	for i := 0; i < 500; i++ {
		x := i % n
		if a, b := ch.SampleIndex(x, rngA), got.SampleIndex(x, rngB); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
	// Re-encoding the decoded channel must be a fixed point.
	again, err := codec.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoded local snapshot differs from original bytes")
	}
}

func TestSnapshotCodecLocalRejectsTampering(t *testing.T) {
	ch := snapshotLocalChannel(t)
	codec := SnapshotCodec{}
	data, err := codec.Encode(ch)
	if err != nil {
		t.Fatal(err)
	}

	// The domain list starts right after the fixed grid header (kind byte +
	// 4 bounds floats + granularity + eps + metric + loss + iters +
	// pairFamilies) with a uint32 count.
	domainOff := 1 + 4*8 + 4 + 8 + 8 + 8 + 4 + 4

	grow := append([]byte(nil), data...)
	grow[domainOff] = byte(len(ch.LocalDomain()) + 1) // count no longer matches list
	if _, err := codec.Decode(context.Background(), grow); err == nil {
		t.Error("accepted inflated domain count")
	}

	swap := append([]byte(nil), data...)
	// Overwrite the first domain entry with the second: no longer strictly
	// increasing.
	copy(swap[domainOff+4:domainOff+8], data[domainOff+8:domainOff+12])
	if _, err := codec.Decode(context.Background(), swap); err == nil {
		t.Error("accepted unsorted domain list")
	}

	// Flip a mantissa bit of the last stored value: either the snapped-copy
	// check, the row-sum check or the restricted verifier must reject it.
	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 0x40
	if _, err := codec.Decode(context.Background(), flip); err == nil {
		t.Error("accepted tampered matrix value")
	}
}

func TestSnapshotCostLocal(t *testing.T) {
	ch := snapshotLocalChannel(t)
	if got, want := SnapshotCost(ch), ch.sparse.costBytes(); got != want {
		t.Fatalf("SnapshotCost(local) = %d, want %d", got, want)
	}
	dense := snapshotTestChannel(t)
	if SnapshotCost(ch) >= SnapshotCost(dense)*int64(ch.N()*ch.N())/int64(dense.N()*dense.N()) {
		t.Log("local channel not smaller per cell than dense (tiny grid, informational)")
	}
}
