package opt

import (
	"bytes"
	"context"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// fuzzSeedPayloads encodes one channel of each snapshot kind — dense grid,
// dense points, compact grid, compact points, locally relevant grid — as
// fuzz corpus seeds.
func fuzzSeedPayloads(f *testing.F) [][]byte {
	f.Helper()
	codec := SnapshotCodec{}

	g, err := grid.New(geo.Rect{MaxX: 10, MaxY: 10}, 3)
	if err != nil {
		f.Fatal(err)
	}
	pw := make([]float64, g.NumCells())
	for i := range pw {
		pw[i] = float64(i + 1)
	}
	gridCh, err := Build(0.7, g, pw, geo.Euclidean, nil)
	if err != nil {
		f.Fatal(err)
	}

	centers := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0.5}, {X: 2.5, Y: 3}, {X: 4, Y: 1}}
	ptCh, err := BuildPoints(0.9, centers, []float64{1, 2, 3, 4}, geo.Euclidean, nil)
	if err != nil {
		f.Fatal(err)
	}

	var payloads [][]byte
	for _, v := range []any{gridCh, ptCh} {
		data, err := codec.Encode(v)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if compact, err := gridCh.Prune(0.05, pw); err == nil {
		data, err := codec.Encode(compact)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if compact, err := ptCh.Prune(0.05, []float64{1, 2, 3, 4}); err == nil {
		data, err := codec.Encode(compact)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	lw := make([]float64, g.NumCells())
	lw[g.Index(1, 1)] = 5
	lw[g.Index(2, 1)] = 3
	if local, err := BuildLocal(0.8, g, lw, geo.Euclidean, 3.5, &LocalOptions{MassFloor: 0.02}); err == nil {
		data, err := codec.Encode(local)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	} else {
		f.Fatal(err)
	}
	return payloads
}

// FuzzSnapshotCodec drives the channel payload decoder — the layer under the
// checksummed frame, so in production it only ever sees CRC-clean bytes, but
// a disk-corruption race or a hostile shared cache volume can still hand it
// anything. Contract: Decode never panics; every accepted payload re-encodes
// to bytes that decode again (the decoder's validation is at least as strict
// as the encoder's output domain).
func FuzzSnapshotCodec(f *testing.F) {
	for _, p := range fuzzSeedPayloads(f) {
		f.Add(p)
		f.Add(p[:len(p)/2])
		f.Add(p[:len(p)-1])
		flipped := append([]byte(nil), p...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xee, 1, 2, 3})

	codec := SnapshotCodec{}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := codec.Decode(ctx, data)
		if err != nil {
			return
		}
		re, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		v2, err := codec.Decode(ctx, re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		re2, err := codec.Encode(v2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode/decode did not reach a fixed point")
		}
	})
}

// FuzzLocalRelevance drives the relevance-set selector with arbitrary
// priors, radii and mass floors, seeded with the degenerate shapes the
// dilation has to survive: all mass in one cell, uniform mass, and empty
// (zero-mass) rows. Invariants: the domain is a sorted, unique, nonempty
// subset of the grid; the heaviest prior cell is always in it, along with
// every cell within the radius of that cell; and the parallel construction
// is bit-identical to the sequential one.
func FuzzLocalRelevance(f *testing.F) {
	f.Add(uint8(6), uint16(3000), uint16(100), []byte{0, 0, 0, 0, 0, 0, 0, 9}) // all mass in one cell
	f.Add(uint8(6), uint16(1500), uint16(100), []byte{1})                      // uniform
	f.Add(uint8(5), uint16(200), uint16(400), []byte{3, 0})                    // empty rows, tiny radius
	f.Add(uint8(4), uint16(65535), uint16(1), []byte{7, 1, 0, 0, 0})           // covering radius
	f.Fuzz(func(t *testing.T, granB uint8, radiusU, floorU uint16, wb []byte) {
		gran := 1 + int(granB)%8
		g, err := grid.New(geo.NewSquare(10), gran)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumCells()
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			if len(wb) > 0 {
				w[i] = float64(wb[i%len(wb)])
			}
			total += w[i]
		}
		if total == 0 {
			w[0] = 1 // zero-mass priors are rejected upstream by normalizePrior
		}
		pi, err := normalizePrior(w)
		if err != nil {
			t.Fatalf("normalizePrior: %v", err)
		}
		radius := 0.01 + float64(radiusU)/65535*30 // (0, ~30] km over a 10 km square
		floor := 0.001 + float64(floorU)/65535*0.4 // (0, ~0.4)

		dom := relevanceDomain(g, pi, radius, floor, 1)
		if len(dom) == 0 || len(dom) > n {
			t.Fatalf("domain size %d of %d cells", len(dom), n)
		}
		inDom := make([]bool, n)
		for i, d := range dom {
			if d < 0 || int(d) >= n {
				t.Fatalf("domain cell %d out of range [0, %d)", d, n)
			}
			if i > 0 && dom[i] <= dom[i-1] {
				t.Fatalf("domain not sorted/unique at %d: %v", i, dom)
			}
			inDom[d] = true
		}

		// The heaviest cell (ties to the lower index) always enters the
		// core first, and dilation must pull in everything within the
		// radius of it.
		argmax := 0
		for i, p := range pi {
			if p > pi[argmax] {
				argmax = i
			}
		}
		if !inDom[argmax] {
			t.Fatalf("heaviest cell %d missing from domain %v", argmax, dom)
		}
		centers := g.Centers()
		for i := 0; i < n; i++ {
			if !inDom[i] && centers[argmax].Dist(centers[i]) <= radius {
				t.Fatalf("cell %d within radius %g of heaviest cell %d but excluded", i, radius, argmax)
			}
		}

		par := relevanceDomain(g, pi, radius, floor, -1)
		if len(par) != len(dom) {
			t.Fatalf("parallel domain size %d != sequential %d", len(par), len(dom))
		}
		for i := range dom {
			if par[i] != dom[i] {
				t.Fatalf("parallel domain differs at %d: %d vs %d", i, par[i], dom[i])
			}
		}
	})
}
