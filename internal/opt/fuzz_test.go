package opt

import (
	"bytes"
	"context"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// fuzzSeedPayloads encodes one channel of each snapshot kind — dense grid,
// dense points, compact grid, compact points — as fuzz corpus seeds.
func fuzzSeedPayloads(f *testing.F) [][]byte {
	f.Helper()
	codec := SnapshotCodec{}

	g, err := grid.New(geo.Rect{MaxX: 10, MaxY: 10}, 3)
	if err != nil {
		f.Fatal(err)
	}
	pw := make([]float64, g.NumCells())
	for i := range pw {
		pw[i] = float64(i + 1)
	}
	gridCh, err := Build(0.7, g, pw, geo.Euclidean, nil)
	if err != nil {
		f.Fatal(err)
	}

	centers := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0.5}, {X: 2.5, Y: 3}, {X: 4, Y: 1}}
	ptCh, err := BuildPoints(0.9, centers, []float64{1, 2, 3, 4}, geo.Euclidean, nil)
	if err != nil {
		f.Fatal(err)
	}

	var payloads [][]byte
	for _, v := range []any{gridCh, ptCh} {
		data, err := codec.Encode(v)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if compact, err := gridCh.Prune(0.05, pw); err == nil {
		data, err := codec.Encode(compact)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if compact, err := ptCh.Prune(0.05, []float64{1, 2, 3, 4}); err == nil {
		data, err := codec.Encode(compact)
		if err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	return payloads
}

// FuzzSnapshotCodec drives the channel payload decoder — the layer under the
// checksummed frame, so in production it only ever sees CRC-clean bytes, but
// a disk-corruption race or a hostile shared cache volume can still hand it
// anything. Contract: Decode never panics; every accepted payload re-encodes
// to bytes that decode again (the decoder's validation is at least as strict
// as the encoder's output domain).
func FuzzSnapshotCodec(f *testing.F) {
	for _, p := range fuzzSeedPayloads(f) {
		f.Add(p)
		f.Add(p[:len(p)/2])
		f.Add(p[:len(p)-1])
		flipped := append([]byte(nil), p...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xee, 1, 2, 3})

	codec := SnapshotCodec{}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := codec.Decode(ctx, data)
		if err != nil {
			return
		}
		re, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		v2, err := codec.Decode(ctx, re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		re2, err := codec.Encode(v2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode/decode did not reach a fixed point")
		}
	})
}
