package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
)

func TestAdversaryErrorValidation(t *testing.T) {
	g := g20(3)
	k := make([]float64, 81)
	for x := 0; x < 9; x++ {
		k[x*9+x] = 1
	}
	w := uniformWeights(9)
	if _, err := AdversaryError(g, k[:10], w, geo.Euclidean); err == nil {
		t.Error("bad channel size should error")
	}
	if _, err := AdversaryError(g, k, w[:2], geo.Euclidean); err == nil {
		t.Error("bad prior size should error")
	}
	if _, err := AdversaryError(g, k, make([]float64, 9), geo.Euclidean); err == nil {
		t.Error("zero prior should error")
	}
	if _, err := AdversaryError(g, k, w, geo.Metric(5)); err == nil {
		t.Error("bad metric should error")
	}
}

// TestAdversaryIdentityChannel: a channel that reveals the cell exactly
// gives the adversary zero error.
func TestAdversaryIdentityChannel(t *testing.T) {
	g := g20(3)
	k := make([]float64, 81)
	for x := 0; x < 9; x++ {
		k[x*9+x] = 1
	}
	e, err := AdversaryError(g, k, uniformWeights(9), geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Errorf("identity channel adversary error %g want 0", e)
	}
}

// TestAdversaryConstantChannel: a channel that always reports the same cell
// carries no information, so the adversary's error equals the prior's
// intrinsic spread (guessing the prior medoid).
func TestAdversaryConstantChannel(t *testing.T) {
	g := g20(3)
	k := make([]float64, 81)
	for x := 0; x < 9; x++ {
		k[x*9+0] = 1 // always report cell 0
	}
	w := uniformWeights(9)
	got, err := AdversaryError(g, k, w, geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	// Best blind guess under a uniform prior on a symmetric grid is the
	// center cell.
	centers := g.Centers()
	want := 0.0
	for x := 0; x < 9; x++ {
		want += centers[x].Dist(centers[4]) / 9
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("constant channel adversary error %g want %g", got, want)
	}
}

// TestAdversaryErrorDecreasesWithEps: more budget means a more revealing
// channel, so the optimal adversary's error shrinks.
func TestAdversaryErrorDecreasesWithEps(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	g := g20(3)
	w := skewedWeights(9, rng)
	prev := math.Inf(1)
	for _, eps := range []float64{0.1, 0.5, 2.0} {
		ch, err := Build(eps, g, w, geo.Euclidean, nil)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := AdversaryError(g, ch.K, w, geo.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if adv > prev+1e-9 {
			t.Errorf("eps=%g: adversary error %g not decreasing (prev %g)", eps, adv, prev)
		}
		prev = adv
	}
}

// TestAdversaryErrorVsRemap: the adversary's expected error equals the
// expected loss of the Bayes-remapped channel when dA = dQ — the attack and
// the utility-restoring post-processing are the same optimization.
func TestAdversaryErrorVsRemap(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	g := g20(3)
	w := skewedWeights(9, rng)
	ch, err := Build(0.4, g, w, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := AdversaryError(g, ch.K, w, geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Remap(ch, w, geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adv-re.ExpectedLoss) > 1e-9 {
		t.Errorf("adversary error %g != remapped loss %g", adv, re.ExpectedLoss)
	}
}

func TestExpectedLossOf(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	g := g20(3)
	w := skewedWeights(9, rng)
	ch, err := Build(0.5, g, w, geo.SquaredEuclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedLossOf(g, ch.K, w, geo.SquaredEuclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ch.ExpectedLoss) > 1e-9 {
		t.Errorf("ExpectedLossOf %g != channel's own %g", got, ch.ExpectedLoss)
	}
	if _, err := ExpectedLossOf(g, ch.K[:3], w, geo.Euclidean); err == nil {
		t.Error("bad channel size should error")
	}
	if _, err := ExpectedLossOf(g, ch.K, w[:3], geo.Euclidean); err == nil {
		t.Error("bad prior size should error")
	}
	if _, err := ExpectedLossOf(g, ch.K, w, geo.Metric(9)); err == nil {
		t.Error("bad metric should error")
	}
}
