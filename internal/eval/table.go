// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation section (§6) — plus two extension
// experiments (a privacy audit and a budget-allocation ablation) — on top of
// the synthetic dataset substitutes. Each Run* function corresponds to one
// paper artifact and returns both the raw series and a formatted table whose
// rows mirror what the paper plots.
package eval

import (
	"fmt"
	"strings"
)

// Table is a titled grid of formatted values.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes holds free-form footnotes rendered after the table.
	Notes []string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned ASCII table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title or notes).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
