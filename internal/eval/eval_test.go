package eval

import (
	"strings"
	"testing"

	"geoind/internal/geo"
)

// testContext returns a context with a reduced workload so the experiment
// machinery is exercised quickly.
func testContext() *Context {
	c := NewContext()
	c.Requests = 300
	return c
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	s := tab.String()
	for _, want := range []string{"== demo ==", "a    bb", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"### demo", "| a | bb |", "| 333 | 4 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown output missing %q:\n%s", want, md)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv output wrong:\n%s", csv)
	}
}

func TestRunFig3Shape(t *testing.T) {
	c := testContext()
	res, err := c.RunFig3([]int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Utility improves (falls) from g=2 to g=6; time grows.
	if res.Rows[2].UtilityLoss >= res.Rows[0].UtilityLoss {
		t.Errorf("utility did not improve with granularity: %v", res.Rows)
	}
	if res.Rows[2].BuildSeconds < res.Rows[0].BuildSeconds {
		t.Errorf("solve time did not grow with granularity: %v", res.Rows)
	}
	if tab := res.Table(); len(tab.Rows) != 3 {
		t.Error("table row count mismatch")
	}
}

func TestRunFig5Accuracy(t *testing.T) {
	c := testContext()
	res, err := c.RunFig5([]int{2, 3, 4, 5}, []float64{0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// The infinite-lattice estimate Phi is conservative on a finite grid:
	// boundary cells have fewer neighbours to leak mass to, so empirical
	// Pr[x|x] sits at or above rho and converges down towards it as g grows
	// (this is the shape of the paper's Figure 5).
	for i, g := range res.Gs {
		for j, rho := range res.Rhos {
			got := res.PrSame[i][j]
			if got < rho-0.01 {
				t.Errorf("g=%d rho=%g: Pr[x|x]=%.3f fell below target", g, rho, got)
			}
			if i > 0 && got > res.PrSame[i-1][j]+0.005 {
				t.Errorf("rho=%g: deviation not shrinking with g (%0.3f at g=%d vs %0.3f at g=%d)",
					rho, got, g, res.PrSame[i-1][j], res.Gs[i-1])
			}
		}
	}
	// At the largest tested granularity the estimate is within ~12% even in
	// the worst (low-rho) case; the full g=7 run converges to the paper's
	// +/-5% band.
	for j, rho := range res.Rhos {
		if dev := res.PrSame[len(res.Gs)-1][j] - rho; dev > 0.12 {
			t.Errorf("rho=%g: deviation %.3f at g=%d too large:\n%s",
				rho, dev, res.Gs[len(res.Gs)-1], res.Table())
		}
		_ = j
	}
	if tab := res.Table(); len(tab.Rows) != 4 || len(tab.Columns) != 4 {
		t.Error("fig5 table malformed")
	}
}

func TestRunTable2Shape(t *testing.T) {
	c := testContext()
	res, err := c.RunTable2([]int{4, 9}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.OPTSkipped {
			t.Fatalf("OPT skipped for eff=%d", row.Eff)
		}
		// OPT is optimal for its grid: it must not lose to MSM by much
		// (sampling noise aside), and MSM must be competitive (paper shows
		// a small gap).
		if row.MSMUtility < row.OPTUtility*0.9 {
			t.Errorf("eff=%d: MSM %.3f suspiciously beats OPT %.3f", row.Eff, row.MSMUtility, row.OPTUtility)
		}
		if row.MSMUtility > row.OPTUtility*2.0 {
			t.Errorf("eff=%d: MSM %.3f much worse than OPT %.3f", row.Eff, row.MSMUtility, row.OPTUtility)
		}
		if row.MSMWarmSec > row.MSMColdSec {
			t.Errorf("eff=%d: warm %.6fs slower than cold %.6fs", row.Eff, row.MSMWarmSec, row.MSMColdSec)
		}
	}
	// Skipping works.
	res, err = c.RunTable2([]int{4, 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[1].OPTSkipped {
		t.Error("eff=9 should have been skipped with maxOptEff=4")
	}
	if _, err := c.RunTable2([]int{5}, 25); err == nil {
		t.Error("non-square effective granularity should error")
	}
}

func TestRunEpsSweepShape(t *testing.T) {
	c := testContext()
	res, err := c.RunEpsSweep(geo.Euclidean, []float64{0.1, 0.5}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 datasets x 1 g x 2 eps
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MSM <= 0 || row.PL <= 0 {
			t.Errorf("non-positive utility: %+v", row)
		}
		// At eps=0.1 MSM must clearly beat PL (paper: ~3x).
		if row.Eps == 0.1 && row.MSM >= row.PL {
			t.Errorf("%s g=%d eps=0.1: MSM %.3f not better than PL %.3f",
				row.Dataset, row.G, row.MSM, row.PL)
		}
	}
	// Loss decreases with eps for both mechanisms.
	if res.Rows[1].MSM >= res.Rows[0].MSM {
		t.Errorf("MSM loss not decreasing in eps: %v then %v", res.Rows[0].MSM, res.Rows[1].MSM)
	}
}

func TestRunGranularityAndRhoSweeps(t *testing.T) {
	c := testContext()
	gres, err := c.RunGranularitySweep(geo.SquaredEuclidean, []int{2, 4}, []float64{0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Rows) != 4 {
		t.Fatalf("granularity rows=%d", len(gres.Rows))
	}
	rres, err := c.RunRhoSweep(geo.Euclidean, []float64{0.5, 0.9}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Rows) != 4 {
		t.Fatalf("rho rows=%d", len(rres.Rows))
	}
	for _, row := range append(gres.Rows, rres.Rows...) {
		if row.MSM <= 0 || row.Height < 1 {
			t.Errorf("bad row %+v", row)
		}
	}
	if tab := gres.Table(); len(tab.Columns) != 5 {
		t.Error("granularity sweep table malformed")
	}
	if tab := rres.Table(); len(tab.Columns) != 5 {
		t.Error("rho sweep table malformed")
	}
}

func TestRunTimings(t *testing.T) {
	c := testContext()
	res, err := c.RunTimings()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range res.Rows {
		if row.Seconds < 0 {
			t.Errorf("negative time %+v", row)
		}
		if _, ok := byName[row.Mechanism]; !ok {
			byName[row.Mechanism] = row.Seconds
		}
	}
	// PL must be the cheapest mechanism; warm MSM must beat cold MSM.
	if byName["PL"] > byName["MSM(warm)"]*100 {
		t.Errorf("PL %.6fs unexpectedly slow vs warm MSM %.6fs", byName["PL"], byName["MSM(warm)"])
	}
	if byName["MSM(warm)"] > byName["MSM(cold)"] {
		t.Errorf("warm %.6fs slower than cold %.6fs", byName["MSM(warm)"], byName["MSM(cold)"])
	}
}

func TestRunPrivacyAudit(t *testing.T) {
	c := testContext()
	res, err := c.RunPrivacyAudit(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	optRow, msmRow := res.Rows[0], res.Rows[1]
	// OPT's effective epsilon must respect the nominal budget.
	if optRow.MaxEffEps > 0.5+1e-6 {
		t.Errorf("OPT effective eps %.4f exceeds nominal 0.5", optRow.MaxEffEps)
	}
	if msmRow.MaxEffEps <= 0 {
		t.Errorf("MSM effective eps %.4f not positive", msmRow.MaxEffEps)
	}
}

func TestRunBudgetAblation(t *testing.T) {
	c := testContext()
	res, err := c.RunBudgetAblation(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	var paper, reversed float64
	for _, row := range res.Rows {
		if row.UtilityLoss <= 0 {
			t.Errorf("bad ablation row %+v", row)
		}
		switch row.Strategy {
		case "problem-1 split (paper)":
			paper = row.UtilityLoss
		case "reversed split (leaf-heavy)":
			reversed = row.UtilityLoss
		}
	}
	// The paper's central finding: top-heavy allocation beats leaf-heavy.
	if paper >= reversed {
		t.Errorf("paper split %.3f not better than reversed split %.3f", paper, reversed)
	}
	if tab := res.Table(); len(tab.Rows) != 4 {
		t.Error("ablation table malformed")
	}
}

func TestRunAdaptiveComparison(t *testing.T) {
	c := testContext()
	res, err := c.RunAdaptiveComparison([]float64{0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // one eps x two datasets
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GridLoss <= 0 || row.AdaptiveLoss <= 0 || row.QuadLoss <= 0 {
			t.Errorf("bad row %+v", row)
		}
		// All variants must beat raw PL (mean 2/eps = 4 km at eps=0.5).
		if row.AdaptiveLoss > 4 || row.QuadLoss > 4 {
			t.Errorf("%s: adaptive %.3f / quad %.3f worse than PL baseline",
				row.Dataset, row.AdaptiveLoss, row.QuadLoss)
		}
		if row.MeanLeafSide <= 0 || row.MeanLeafSide > 20 {
			t.Errorf("bad leaf side %g", row.MeanLeafSide)
		}
		if row.QuadDepth < 1 {
			t.Errorf("quad depth %d", row.QuadDepth)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table malformed")
	}
}

func TestRunSpannerAblation(t *testing.T) {
	c := testContext()
	res, err := c.RunSpannerAblation(4, 0.5, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	full, sp := res.Rows[0], res.Rows[1]
	if sp.PairFamilies >= full.PairFamilies {
		t.Errorf("spanner families %d not below full %d", sp.PairFamilies, full.PairFamilies)
	}
	if sp.ExpectedLoss < full.ExpectedLoss-1e-9 {
		t.Errorf("spanner loss %g below optimal %g", sp.ExpectedLoss, full.ExpectedLoss)
	}
	for _, row := range res.Rows {
		if row.GeoIndExcess > 1e-6 {
			t.Errorf("%s violates GeoInd by %g", row.Variant, row.GeoIndExcess)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table malformed")
	}
}

func TestRunAdversary(t *testing.T) {
	c := testContext()
	res, err := c.RunAdversary(9, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// 4 mechanisms x 2 eps (9 = 3^2, so the MSM row is included).
	if len(res.Rows) != 8 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	get := func(name string, eps float64) AdversaryRow {
		for _, row := range res.Rows {
			if row.Mechanism == name && row.Eps == eps {
				return row
			}
		}
		t.Fatalf("row %s eps=%g missing", name, eps)
		return AdversaryRow{}
	}
	for _, eps := range []float64{0.1, 0.9} {
		pl := get("PL+remap", eps)
		optRow := get("OPT", eps)
		remap := get("OPT+remap", eps)
		msm := get("MSM(h=2)", eps)
		// OPT minimizes expected loss among channels that satisfy the GeoInd
		// constraints AS A MATRIX. PL is in that class and cannot beat it.
		// The MSM end-to-end channel and OPT+remap are NOT in that class
		// (MSM's coarse levels act on snapped distances — see the privacy
		// audit — and remap is post-processing), so both may edge out OPT
		// marginally; neither should beat it meaningfully.
		if pl.Utility < optRow.Utility-1e-6 {
			t.Errorf("eps=%g: PL utility %.4f beats OPT %.4f", eps, pl.Utility, optRow.Utility)
		}
		for _, near := range []AdversaryRow{remap, msm} {
			if near.Utility < optRow.Utility*0.98 {
				t.Errorf("eps=%g: %s utility %.4f suspiciously beats OPT %.4f",
					eps, near.Mechanism, near.Utility, optRow.Utility)
			}
		}
		if remap.Utility > optRow.Utility+1e-9 {
			t.Errorf("eps=%g: OPT+remap %.4f worse than OPT %.4f", eps, remap.Utility, optRow.Utility)
		}
		// Remap never hurts PL... (it equals adversary error) and adversary
		// error is bounded below by 0.
		for _, row := range []AdversaryRow{pl, optRow, remap, msm} {
			if row.AdvError < 0 {
				t.Errorf("negative adversary error %+v", row)
			}
		}
	}
	// More budget = lower adversary error for each mechanism.
	for _, name := range []string{"PL+remap", "OPT", "MSM(h=2)"} {
		if get(name, 0.9).AdvError > get(name, 0.1).AdvError+1e-9 {
			t.Errorf("%s: adversary error did not shrink with eps", name)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 8 {
		t.Error("table malformed")
	}
}

func TestRunTrajectory(t *testing.T) {
	c := testContext()
	res, err := c.RunTrajectory(1.0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PredSpent >= row.IndSpent {
			t.Errorf("%s: predictive spent %.1f not below independent %.1f",
				row.Profile, row.PredSpent, row.IndSpent)
		}
		if row.PredFreshShare <= 0 || row.PredFreshShare >= 1 {
			t.Errorf("%s: fresh share %g", row.Profile, row.PredFreshShare)
		}
		if row.PredLoss > 3*row.IndLoss+1 {
			t.Errorf("%s: predictive loss %.2f collapsed vs %.2f", row.Profile, row.PredLoss, row.IndLoss)
		}
	}
	// Savings shrink as mobility grows.
	if res.Rows[0].PredSpent > res.Rows[2].PredSpent {
		t.Errorf("sedentary spend %.1f above mobile spend %.1f",
			res.Rows[0].PredSpent, res.Rows[2].PredSpent)
	}
	if tab := res.Table(); len(tab.Rows) != 3 {
		t.Error("table malformed")
	}
}

func TestRunElastic(t *testing.T) {
	c := testContext()
	res, err := c.RunElastic(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	plain, elastic := res.Rows[0], res.Rows[1]
	if elastic.PrSameSensitive >= plain.PrSameSensitive {
		t.Errorf("district Pr[x|x] %.3f not reduced from %.3f",
			elastic.PrSameSensitive, plain.PrSameSensitive)
	}
	if elastic.AdvErrSensitive <= plain.AdvErrSensitive {
		t.Errorf("district adversary error %.3f not increased from %.3f",
			elastic.AdvErrSensitive, plain.AdvErrSensitive)
	}
	if elastic.Utility < plain.Utility {
		t.Errorf("extra protection should cost utility: %.3f < %.3f",
			elastic.Utility, plain.Utility)
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table malformed")
	}
}
