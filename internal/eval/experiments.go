package eval

import (
	"fmt"
	"math"
	"time"

	"geoind/internal/budget"
	"geoind/internal/core"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/laplace"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// DefaultEps is the paper's default privacy budget (§6.2).
const DefaultEps = 0.5

// DefaultRho is the paper's default same-cell probability target (§6.1).
const DefaultRho = 0.8

// ---------------------------------------------------------------------------
// Figure 3: effect of granularity on OPT utility and running time.

// Fig3Row is one point of the Figure 3 sweep.
type Fig3Row struct {
	G            int
	UtilityLoss  float64
	BuildSeconds float64
}

// Fig3Result is the Figure 3 series (OPT on Gowalla, eps=0.5, Euclidean).
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 sweeps OPT grid granularity. The paper sweeps g=2..11 with
// Gurobi; pass the range that fits your time budget (each step is one full
// LP solve; cost grows like g^8).
func (c *Context) RunFig3(gs []int) (*Fig3Result, error) {
	res := &Fig3Result{}
	for _, g := range gs {
		ch, dur, err := c.optChannel(c.Gowalla, DefaultEps, g, geo.Euclidean)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig3Row{
			G:            g,
			UtilityLoss:  c.channelUtility(ch, c.Gowalla, geo.Euclidean),
			BuildSeconds: dur.Seconds(),
		})
	}
	return res, nil
}

// Table renders the Figure 3 series.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:   "Figure 3: OPT utility loss and running time vs granularity (Gowalla, eps=0.5)",
		Columns: []string{"g", "utility_loss_km", "solve_time_s"},
		Notes:   []string{"paper shape: utility falls with g, solve time rises sharply (hours beyond g=11 with Gurobi)"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.G), f3(row.UtilityLoss), f3(row.BuildSeconds))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5: accuracy of the Phi estimate of Pr[x|x].

// Fig5Result holds empirical Pr[x|x] per (g, rho): PrSame[i][j] is the value
// for Gs[i], Rhos[j].
type Fig5Result struct {
	Gs     []int
	Rhos   []float64
	PrSame [][]float64
}

// RunFig5 validates the budget-allocation model: for each granularity g and
// target rho, the budget from Problem 1 is fed to OPT with a uniform global
// prior (as in the paper), and the resulting Pr[x|x] is measured over the
// Gowalla request workload — i.e. weighted by where users actually are. The
// infinite-lattice estimate Phi is exact for interior cells; boundary cells
// retain more self-probability, so the empirical value sits at or above rho
// and approaches it as g grows (the shape of the paper's figure).
func (c *Context) RunFig5(gs []int, rhos []float64) (*Fig5Result, error) {
	res := &Fig5Result{Gs: gs, Rhos: rhos}
	region := c.Gowalla.Region()
	sideL := region.Width()
	for _, g := range gs {
		row := make([]float64, len(rhos))
		gr, err := grid.New(region, g)
		if err != nil {
			return nil, err
		}
		uw := prior.Uniform(gr).Weights()
		dataWeights := prior.FromPoints(gr, c.Gowalla.Points()).Weights()
		for j, rho := range rhos {
			eps, err := budget.MinEpsilon(sideL/float64(g), rho)
			if err != nil {
				return nil, err
			}
			ch, err := opt.Build(eps, gr, uw, geo.Euclidean, nil)
			if err != nil {
				return nil, fmt.Errorf("fig5 g=%d rho=%g: %w", g, rho, err)
			}
			mean := 0.0
			for x := 0; x < ch.N(); x++ {
				mean += dataWeights[x] * ch.ProbSame(x)
			}
			row[j] = mean
		}
		res.PrSame = append(res.PrSame, row)
	}
	return res, nil
}

// Table renders the Figure 5 grid.
func (r *Fig5Result) Table() *Table {
	cols := []string{"g"}
	for _, rho := range r.Rhos {
		cols = append(cols, fmt.Sprintf("rho=%.1f", rho))
	}
	t := &Table{
		Title:   "Figure 5: empirical Pr[x|x] at the Problem-1 budget (uniform prior)",
		Columns: cols,
		Notes:   []string{"paper: within +/-5% of rho for g >= 3 (g=2 excluded)"},
	}
	for i, g := range r.Gs {
		cells := []string{fmt.Sprintf("%d", g)}
		for _, v := range r.PrSame[i] {
			cells = append(cells, f3(v))
		}
		t.AddRow(cells...)
	}
	return t
}

// MaxDeviation returns the largest |Pr[x|x] - rho| over the grid, optionally
// excluding g=2 (as the paper does).
func (r *Fig5Result) MaxDeviation(excludeG2 bool) float64 {
	worst := 0.0
	for i, g := range r.Gs {
		if excludeG2 && g == 2 {
			continue
		}
		for j, rho := range r.Rhos {
			if d := math.Abs(r.PrSame[i][j] - rho); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Table 2: MSM vs OPT at matched effective granularity.

// Table2Row compares OPT at effective granularity Eff x Eff against MSM with
// fanout sqrt(Eff) and two levels.
type Table2Row struct {
	Eff         int // effective cells per side (OPT granularity)
	OPTUtility  float64
	MSMUtility  float64
	OPTSolveSec float64
	MSMColdSec  float64 // per-query with empty channel cache
	MSMWarmSec  float64 // per-query with warm cache
	MSMFanout   int
	OPTSkipped  bool // true when the OPT column was not run (too large)
}

// Table2Result reproduces Table 2 (Gowalla, eps=0.5, Euclidean).
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 compares OPT and MSM. effs lists effective granularities; each
// must be a perfect square (4, 9, 16 in the paper). maxOptEff skips the OPT
// column above that threshold (the paper's 16 entry ran 72h+ without
// finishing under Gurobi; our structured solver completes it in minutes, but
// callers may still want to skip it in quick runs).
func (c *Context) RunTable2(effs []int, maxOptEff int) (*Table2Result, error) {
	res := &Table2Result{}
	for _, eff := range effs {
		fanout := int(math.Round(math.Sqrt(float64(eff))))
		if fanout*fanout != eff {
			return nil, fmt.Errorf("table2: effective granularity %d is not a perfect square", eff)
		}
		row := Table2Row{Eff: eff, MSMFanout: fanout}

		// MSM with two levels at fanout sqrt(eff).
		p := msmParams{eps: DefaultEps, g: fanout, rho: DefaultRho, metric: geo.Euclidean, forceHeight: 2}
		util, m, err := c.msmUtility(c.Gowalla, p)
		if err != nil {
			return nil, err
		}
		row.MSMUtility = util
		cold, warm, err := c.msmQueryTimes(m)
		if err != nil {
			return nil, err
		}
		row.MSMColdSec, row.MSMWarmSec = cold, warm

		if eff <= maxOptEff {
			ch, dur, err := c.optChannel(c.Gowalla, DefaultEps, eff, geo.Euclidean)
			if err != nil {
				return nil, err
			}
			row.OPTUtility = c.channelUtility(ch, c.Gowalla, geo.Euclidean)
			row.OPTSolveSec = dur.Seconds()
		} else {
			row.OPTSkipped = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// msmQueryTimes measures cold (empty cache) and warm per-query latency.
func (c *Context) msmQueryTimes(m *core.Mechanism) (cold, warm float64, err error) {
	reqs := c.requests(c.Gowalla, 505)
	rng := c.rng(606)
	const coldTrials = 5
	for i := 0; i < coldTrials && i < len(reqs); i++ {
		m.ClearCache()
		start := time.Now()
		if _, err = m.ReportWith(reqs[i], rng); err != nil {
			return 0, 0, err
		}
		cold += time.Since(start).Seconds()
	}
	cold /= coldTrials
	if err = m.Precompute(); err != nil {
		return 0, 0, err
	}
	warmTrials := min(len(reqs), 2000)
	start := time.Now()
	for i := 0; i < warmTrials; i++ {
		if _, err = m.ReportWith(reqs[i], rng); err != nil {
			return 0, 0, err
		}
	}
	warm = time.Since(start).Seconds() / float64(warmTrials)
	return cold, warm, nil
}

// Table renders the Table 2 comparison.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title: "Table 2: MSM vs OPT at matched effective granularity (Gowalla, eps=0.5)",
		Columns: []string{"granularity", "OPT_util_km", "MSM_util_km",
			"OPT_time_s", "MSM_cold_s", "MSM_warm_s"},
		Notes: []string{
			"MSM uses fanout sqrt(granularity) with two levels, as in the paper",
			"the paper's OPT at granularity 16 did not finish within 72h under Gurobi",
		},
	}
	for _, row := range r.Rows {
		optU, optT := "-", "-"
		if !row.OPTSkipped {
			optU, optT = f3(row.OPTUtility), f3(row.OPTSolveSec)
		}
		t.AddRow(fmt.Sprintf("%d", row.Eff), optU, f3(row.MSMUtility),
			optT, f4(row.MSMColdSec), fmt.Sprintf("%.6f", row.MSMWarmSec))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 6/7: utility loss vs eps, MSM against planar Laplace.

// SweepRow is one measured point of an MSM/PL comparison sweep.
type SweepRow struct {
	Dataset string
	G       int
	Eps     float64
	Rho     float64
	MSM     float64
	PL      float64
	Height  int
}

// SweepResult holds the series of Figures 6/7 (vs eps), 8/9 (vs g) or 10/11
// (vs rho), distinguished by Kind.
type SweepResult struct {
	Kind   string // "eps", "granularity", "rho"
	Metric geo.Metric
	Rows   []SweepRow
}

// RunEpsSweep reproduces Figure 6 (Euclidean metric) or Figure 7 (squared
// Euclidean): utility loss of MSM and grid-remapped PL for eps in epsList
// and g in gList, at the default rho, on both datasets.
func (c *Context) RunEpsSweep(metric geo.Metric, epsList []float64, gList []int) (*SweepResult, error) {
	res := &SweepResult{Kind: "eps", Metric: metric}
	for _, ds := range c.Datasets() {
		for _, g := range gList {
			for _, eps := range epsList {
				msmU, m, err := c.msmUtility(ds, msmParams{eps: eps, g: g, rho: DefaultRho, metric: metric})
				if err != nil {
					return nil, err
				}
				plU, err := c.plUtility(ds, eps, g, metric)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, SweepRow{
					Dataset: ds.Name, G: g, Eps: eps, Rho: DefaultRho,
					MSM: msmU, PL: plU, Height: m.Height(),
				})
			}
		}
	}
	return res, nil
}

// RunGranularitySweep reproduces Figure 8 (Euclidean) or Figure 9 (squared):
// MSM utility loss vs granularity for several rho settings at eps=0.5.
func (c *Context) RunGranularitySweep(metric geo.Metric, gList []int, rhoList []float64) (*SweepResult, error) {
	res := &SweepResult{Kind: "granularity", Metric: metric}
	for _, ds := range c.Datasets() {
		for _, rho := range rhoList {
			for _, g := range gList {
				msmU, m, err := c.msmUtility(ds, msmParams{eps: DefaultEps, g: g, rho: rho, metric: metric})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, SweepRow{
					Dataset: ds.Name, G: g, Eps: DefaultEps, Rho: rho,
					MSM: msmU, Height: m.Height(),
				})
			}
		}
	}
	return res, nil
}

// RunRhoSweep reproduces Figure 10 (Euclidean) or Figure 11 (squared): MSM
// utility loss vs rho for several granularities at eps=0.5.
func (c *Context) RunRhoSweep(metric geo.Metric, rhoList []float64, gList []int) (*SweepResult, error) {
	res := &SweepResult{Kind: "rho", Metric: metric}
	for _, ds := range c.Datasets() {
		for _, g := range gList {
			for _, rho := range rhoList {
				msmU, m, err := c.msmUtility(ds, msmParams{eps: DefaultEps, g: g, rho: rho, metric: metric})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, SweepRow{
					Dataset: ds.Name, G: g, Eps: DefaultEps, Rho: rho,
					MSM: msmU, Height: m.Height(),
				})
			}
		}
	}
	return res, nil
}

// Table renders a sweep.
func (r *SweepResult) Table() *Table {
	var title string
	unit := r.Metric.Unit()
	switch r.Kind {
	case "eps":
		title = fmt.Sprintf("Figures 6/7: utility loss (%s) vs eps, MSM vs PL+remap", unit)
	case "granularity":
		title = fmt.Sprintf("Figures 8/9: MSM utility loss (%s) vs granularity", unit)
	default:
		title = fmt.Sprintf("Figures 10/11: MSM utility loss (%s) vs rho", unit)
	}
	t := &Table{Title: title}
	if r.Kind == "eps" {
		t.Columns = []string{"dataset", "g", "eps", "MSM_" + unit, "PL_" + unit, "height"}
		for _, row := range r.Rows {
			t.AddRow(row.Dataset, fmt.Sprintf("%d", row.G), fmt.Sprintf("%.1f", row.Eps),
				f3(row.MSM), f3(row.PL), fmt.Sprintf("%d", row.Height))
		}
		return t
	}
	t.Columns = []string{"dataset", "g", "rho", "MSM_" + unit, "height"}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprintf("%d", row.G), fmt.Sprintf("%.1f", row.Rho),
			f3(row.MSM), fmt.Sprintf("%d", row.Height))
	}
	return t
}

// ---------------------------------------------------------------------------
// Section 6.2 timing claims.

// TimingRow is one latency measurement.
type TimingRow struct {
	Mechanism string
	Config    string
	Seconds   float64
}

// TimingResult summarizes per-report latency for all mechanisms.
type TimingResult struct {
	Rows []TimingRow
}

// RunTimings measures per-report latency: PL (~10ms in the paper's setup,
// much faster here), MSM cold and warm, and OPT solve times for context.
func (c *Context) RunTimings() (*TimingResult, error) {
	res := &TimingResult{}
	ds := c.Gowalla
	reqs := c.requests(ds, 707)

	// PL raw.
	pl, err := laplace.New(DefaultEps, c.rng(808))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, x := range reqs {
		pl.Sample(x)
	}
	res.Rows = append(res.Rows, TimingRow{"PL", "eps=0.5", time.Since(start).Seconds() / float64(len(reqs))})

	for _, g := range []int{4, 6} {
		m, err := c.buildMSM(ds, msmParams{eps: DefaultEps, g: g, rho: DefaultRho, metric: geo.Euclidean})
		if err != nil {
			return nil, err
		}
		cold, warm, err := c.msmQueryTimes(m)
		if err != nil {
			return nil, err
		}
		cfg := fmt.Sprintf("g=%d,h=%d", g, m.Height())
		res.Rows = append(res.Rows,
			TimingRow{"MSM(cold)", cfg, cold},
			TimingRow{"MSM(warm)", cfg, warm})
	}

	for _, g := range []int{4, 6, 8} {
		_, dur, err := c.optChannel(ds, DefaultEps, g, geo.Euclidean)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TimingRow{"OPT(solve)", fmt.Sprintf("g=%d", g), dur.Seconds()})
	}
	return res, nil
}

// Table renders the timing summary.
func (r *TimingResult) Table() *Table {
	t := &Table{
		Title:   "Section 6.2: per-report latency and solve times",
		Columns: []string{"mechanism", "config", "seconds"},
		Notes:   []string{"paper: PL ~10ms, MSM 100-200ms typical / <1s worst (client hardware, Gurobi)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, row.Config, fmt.Sprintf("%.6f", row.Seconds))
	}
	return t
}
