package eval

import (
	"fmt"
	"math/rand/v2"
	"time"

	"geoind/internal/core"
	"geoind/internal/dataset"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/laplace"
	"geoind/internal/lp"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// Context carries the datasets and workload parameters shared by all
// experiments. The defaults mirror §6.1: 3,000 randomly selected check-in
// requests per measurement, eps default 0.5, rho default 0.8.
type Context struct {
	Gowalla  *dataset.Dataset
	Yelp     *dataset.Dataset
	Requests int
	Seed     uint64
	// Workers bounds LP block-solve parallelism during mechanism
	// construction. Experiments keep the sequential default; the IPM is
	// bit-identical for any worker count, so raising it only changes wall
	// time.
	Workers int
}

// NewContext loads the synthetic datasets with the paper's workload size.
func NewContext() *Context {
	return &Context{
		Gowalla:  dataset.SyntheticGowalla(),
		Yelp:     dataset.SyntheticYelp(),
		Requests: 3000,
		Seed:     2019,
		Workers:  1,
	}
}

// Datasets returns the evaluation datasets in paper order.
func (c *Context) Datasets() []*dataset.Dataset {
	return []*dataset.Dataset{c.Gowalla, c.Yelp}
}

func (c *Context) rng(salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(c.Seed, salt))
}

func (c *Context) requests(ds *dataset.Dataset, salt uint64) []geo.Point {
	return ds.SampleRequests(c.Requests, c.rng(salt))
}

// msmParams bundles one MSM configuration.
type msmParams struct {
	eps         float64
	g           int
	rho         float64
	metric      geo.Metric
	forceHeight int
	custom      []float64
}

// buildMSM constructs the mechanism for a dataset.
func (c *Context) buildMSM(ds *dataset.Dataset, p msmParams) (*core.Mechanism, error) {
	return core.New(core.Config{
		Eps:           p.eps,
		G:             p.g,
		Region:        ds.Region(),
		Rho:           p.rho,
		Metric:        p.metric,
		PriorPoints:   ds.Points(),
		ForceHeight:   p.forceHeight,
		CustomBudgets: p.custom,
		Workers:       c.Workers,
	}, c.Seed)
}

// msmUtility measures the mean utility loss of an MSM configuration over the
// standard workload.
func (c *Context) msmUtility(ds *dataset.Dataset, p msmParams) (float64, *core.Mechanism, error) {
	m, err := c.buildMSM(ds, p)
	if err != nil {
		return 0, nil, err
	}
	reqs := c.requests(ds, 101)
	// Batch path: ReportBatchWith draws from the shared RNG sequentially in
	// input order, so the measured losses are bit-identical to the historical
	// per-point ReportWith loop.
	zs, err := m.ReportBatchWith(reqs, c.rng(202))
	if err != nil {
		return 0, nil, err
	}
	loss := 0.0
	for i, x := range reqs {
		loss += p.metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs)), m, nil
}

// plUtility measures the mean utility loss of the planar Laplace benchmark
// with grid remapping (the paper's PL configuration).
func (c *Context) plUtility(ds *dataset.Dataset, eps float64, g int, metric geo.Metric) (float64, error) {
	pl, err := laplace.New(eps, c.rng(303))
	if err != nil {
		return 0, err
	}
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return 0, err
	}
	reqs := c.requests(ds, 101)
	zs := pl.SampleBatch(reqs, gr)
	loss := 0.0
	for i, x := range reqs {
		loss += metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs)), nil
}

// optChannel builds the OPT channel for a dataset prior, returning the solve
// wall time.
func (c *Context) optChannel(ds *dataset.Dataset, eps float64, g int, metric geo.Metric) (*opt.Channel, time.Duration, error) {
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return nil, 0, err
	}
	pw := prior.FromPoints(gr, ds.Points()).Weights()
	start := time.Now()
	ch, err := opt.Build(eps, gr, pw, metric, &opt.Options{
		LP: &lp.IPMOptions{Workers: c.Workers},
	})
	if err != nil {
		return nil, 0, fmt.Errorf("OPT g=%d eps=%g: %w", g, eps, err)
	}
	return ch, time.Since(start), nil
}

// channelUtility measures the empirical mean utility loss of sampling from a
// solved channel over the standard workload.
func (c *Context) channelUtility(ch *opt.Channel, ds *dataset.Dataset, metric geo.Metric) float64 {
	reqs := c.requests(ds, 101)
	// SampleBatch consumes the RNG exactly as a Sample loop would, keeping
	// the measurement bit-identical to the historical per-point path.
	zs := ch.SampleBatch(reqs, c.rng(404))
	loss := 0.0
	for i, x := range reqs {
		loss += metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs))
}
