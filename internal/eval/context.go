package eval

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"geoind/internal/channel"
	"geoind/internal/core"
	"geoind/internal/dataset"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/laplace"
	"geoind/internal/lp"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// Context carries the datasets and workload parameters shared by all
// experiments. The defaults mirror §6.1: 3,000 randomly selected check-in
// requests per measurement, eps default 0.5, rho default 0.8.
type Context struct {
	Gowalla  *dataset.Dataset
	Yelp     *dataset.Dataset
	Requests int
	Seed     uint64
	// Workers bounds LP block-solve parallelism during mechanism
	// construction. Experiments keep the sequential default; the IPM is
	// bit-identical for any worker count, so raising it only changes wall
	// time.
	Workers int
	// CacheDir, when non-empty, routes the harness's directly built OPT and
	// spanner channels through a snapshot-persisted channel store, so
	// repeated experiment runs reuse solved channels from disk instead of
	// repeating the LP solves. Empty keeps the historical direct-solve path
	// (measured solve times and outputs unchanged).
	CacheDir string
	// LocalRadius, when positive, routes directly built OPT channels through
	// the locally relevant construction: each LP is solved only over cells
	// within this radius (km) of the prior-mass core, with the excluded tail
	// padded eps-preservingly. Local channels carry a distinct store variant
	// so they never alias full-LP or spanner snapshots.
	LocalRadius float64
	// LocalMassFloor is the prior mass allowed outside the relevance core
	// (0 = opt.DefaultLocalMassFloor). Only meaningful with LocalRadius > 0.
	LocalMassFloor float64

	storeMu  sync.Mutex
	store    *channel.Store
	storeErr error
}

// NewContext loads the synthetic datasets with the paper's workload size.
func NewContext() *Context {
	return &Context{
		Gowalla:  dataset.SyntheticGowalla(),
		Yelp:     dataset.SyntheticYelp(),
		Requests: 3000,
		Seed:     2019,
		Workers:  1,
	}
}

// Datasets returns the evaluation datasets in paper order.
func (c *Context) Datasets() []*dataset.Dataset {
	return []*dataset.Dataset{c.Gowalla, c.Yelp}
}

func (c *Context) rng(salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(c.Seed, salt))
}

func (c *Context) requests(ds *dataset.Dataset, salt uint64) []geo.Point {
	return ds.SampleRequests(c.Requests, c.rng(salt))
}

// msmParams bundles one MSM configuration.
type msmParams struct {
	eps         float64
	g           int
	rho         float64
	metric      geo.Metric
	forceHeight int
	custom      []float64
}

// buildMSM constructs the mechanism for a dataset.
func (c *Context) buildMSM(ds *dataset.Dataset, p msmParams) (*core.Mechanism, error) {
	return core.New(core.Config{
		Eps:           p.eps,
		G:             p.g,
		Region:        ds.Region(),
		Rho:           p.rho,
		Metric:        p.metric,
		PriorPoints:   ds.Points(),
		ForceHeight:   p.forceHeight,
		CustomBudgets: p.custom,
		Workers:       c.Workers,
	}, c.Seed)
}

// msmUtility measures the mean utility loss of an MSM configuration over the
// standard workload.
func (c *Context) msmUtility(ds *dataset.Dataset, p msmParams) (float64, *core.Mechanism, error) {
	m, err := c.buildMSM(ds, p)
	if err != nil {
		return 0, nil, err
	}
	reqs := c.requests(ds, 101)
	// Batch path: ReportBatchWith draws from the shared RNG sequentially in
	// input order, so the measured losses are bit-identical to the historical
	// per-point ReportWith loop.
	zs, err := m.ReportBatchWith(reqs, c.rng(202))
	if err != nil {
		return 0, nil, err
	}
	loss := 0.0
	for i, x := range reqs {
		loss += p.metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs)), m, nil
}

// plUtility measures the mean utility loss of the planar Laplace benchmark
// with grid remapping (the paper's PL configuration).
func (c *Context) plUtility(ds *dataset.Dataset, eps float64, g int, metric geo.Metric) (float64, error) {
	pl, err := laplace.New(eps, c.rng(303))
	if err != nil {
		return 0, err
	}
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return 0, err
	}
	reqs := c.requests(ds, 101)
	zs := pl.SampleBatch(reqs, gr)
	loss := 0.0
	for i, x := range reqs {
		loss += metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs)), nil
}

// channelStore lazily builds the harness's shared channel store: snapshot
// persistence under CacheDir when set, in-memory only otherwise.
func (c *Context) channelStore() (*channel.Store, error) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store != nil || c.storeErr != nil {
		return c.store, c.storeErr
	}
	opts := channel.Options{CostFn: opt.SnapshotCost}
	if c.CacheDir != "" {
		dc, err := channel.NewDirCache(c.CacheDir, opt.SnapshotCodec{})
		if err != nil {
			c.storeErr = err
			return nil, err
		}
		opts.Backing = dc
	}
	c.store = channel.New(opts)
	return c.store, nil
}

// SyncCache blocks until pending write-behind snapshot writes reach disk;
// a no-op when no channel was routed through the store.
func (c *Context) SyncCache() {
	c.storeMu.Lock()
	s := c.store
	c.storeMu.Unlock()
	if s != nil {
		s.Sync()
	}
}

// optKey is the store key of a directly built evaluation channel: the
// dataset name, region and prior are fingerprinted, granularity rides in the
// Level field, and variant carries the spanner stretch bits (0 = full LP).
func optKey(dsName string, region geo.Rect, pw []float64, eps float64, g int, metric geo.Metric, variant uint64) channel.Key {
	h := channel.NewHasher()
	h.String(dsName)
	h.Float64(region.MinX)
	h.Float64(region.MinY)
	h.Float64(region.MaxX)
	h.Float64(region.MaxY)
	h.Floats(pw)
	return channel.NewKey("opt", g, 0, eps, int(metric), h.Sum()).WithVariant(variant)
}

// storedChannel routes one channel build through the shared store (and hence
// the snapshot cache when CacheDir is set): a verified snapshot load replaces
// the solve, and a fresh solve is persisted for the next run.
func (c *Context) storedChannel(key channel.Key, solve func() (*opt.Channel, error)) (*opt.Channel, error) {
	store, err := c.channelStore()
	if err != nil {
		return nil, err
	}
	v, _, err := store.GetOrCompute(key, func() (any, error) { return solve() })
	if err != nil {
		return nil, err
	}
	if ch, ok := v.(*opt.Channel); ok {
		return ch, nil
	}
	return solve()
}

// optChannel builds the OPT channel for a dataset prior, returning the solve
// wall time (snapshot-load time when CacheDir serves a prior run's solve).
func (c *Context) optChannel(ds *dataset.Dataset, eps float64, g int, metric geo.Metric) (*opt.Channel, time.Duration, error) {
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return nil, 0, err
	}
	pw := prior.FromPoints(gr, ds.Points()).Weights()
	solve := func() (*opt.Channel, error) {
		if c.LocalRadius > 0 {
			return opt.BuildLocal(eps, gr, pw, metric, c.LocalRadius, &opt.LocalOptions{
				MassFloor: c.LocalMassFloor,
				LP:        &lp.IPMOptions{Workers: c.Workers},
				Workers:   c.Workers,
			})
		}
		return opt.Build(eps, gr, pw, metric, &opt.Options{
			LP: &lp.IPMOptions{Workers: c.Workers},
		})
	}
	// The local construction gets a tagged variant so its snapshots can never
	// alias the full-LP variant 0 or the raw Float64bits(stretch) variants the
	// spanner experiments use.
	variant := uint64(0)
	if c.LocalRadius > 0 {
		vh := channel.NewHasher()
		vh.String("local")
		vh.Uint64(math.Float64bits(c.LocalRadius))
		vh.Uint64(math.Float64bits(c.LocalMassFloor))
		variant = vh.Sum()
	}
	start := time.Now()
	var ch *opt.Channel
	if c.CacheDir != "" {
		ch, err = c.storedChannel(optKey(ds.Name, ds.Region(), pw, eps, g, metric, variant), solve)
	} else {
		ch, err = solve()
	}
	if err != nil {
		return nil, 0, fmt.Errorf("OPT g=%d eps=%g: %w", g, eps, err)
	}
	return ch, time.Since(start), nil
}

// channelUtility measures the empirical mean utility loss of sampling from a
// solved channel over the standard workload.
func (c *Context) channelUtility(ch *opt.Channel, ds *dataset.Dataset, metric geo.Metric) float64 {
	reqs := c.requests(ds, 101)
	// SampleBatch consumes the RNG exactly as a Sample loop would, keeping
	// the measurement bit-identical to the historical per-point path.
	zs := ch.SampleBatch(reqs, c.rng(404))
	loss := 0.0
	for i, x := range reqs {
		loss += metric.Loss(x, zs[i])
	}
	return loss / float64(len(reqs))
}
