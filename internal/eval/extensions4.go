package eval

import (
	"fmt"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// ---------------------------------------------------------------------------
// Extension 7: elastic distinguishability metrics (reference [6] of the
// paper) — location-dependent privacy requirements.

// ElasticRow summarizes one channel's behaviour inside and outside a
// sensitive district.
type ElasticRow struct {
	Variant string
	// PrSameSensitive / PrSameOther: mean Pr[x|x] for cells inside / outside
	// the sensitive district (lower inside = more protection there).
	PrSameSensitive float64
	PrSameOther     float64
	// AdvErrSensitive: Bayesian adversary's expected error conditioned on
	// the true location being in the district.
	AdvErrSensitive float64
	// Utility is the overall expected loss.
	Utility float64
}

// ElasticResult is the elastic-metric analysis.
type ElasticResult struct {
	G    int
	Eps  float64
	Rows []ElasticRow
}

// RunElastic compares the standard uniform-level optimal mechanism against
// one constrained by an elastic metric that marks a 2x2 "hospital district"
// with sensitivity factor 0.3 (distinguishability accumulates 3.3x slower
// through it). Gowalla prior, granularity g.
func (c *Context) RunElastic(g int, eps float64) (*ElasticResult, error) {
	res := &ElasticResult{G: g, Eps: eps}
	ds := c.Gowalla
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return nil, err
	}
	pw := prior.FromPoints(gr, ds.Points()).Weights()

	// Sensitive district: the 2x2 block anchored one cell in from the
	// bottom-left corner.
	sensitive := map[int]bool{}
	sens := make([]float64, gr.NumCells())
	for i := range sens {
		sens[i] = 1
	}
	for r := 1; r <= 2; r++ {
		for col := 1; col <= 2; col++ {
			idx := gr.Index(r, col)
			sensitive[idx] = true
			sens[idx] = 0.3
		}
	}

	build := func(variant string, sensVec []float64) error {
		ell, err := opt.ElasticMetric(gr, eps, sensVec)
		if err != nil {
			return err
		}
		ch, err := opt.BuildMetric(ell, gr, pw, geo.Euclidean, nil)
		if err != nil {
			return err
		}
		if ex := opt.VerifyMetricInd(gr.NumCells(), ell, ch.K); ex > 1e-6 {
			return fmt.Errorf("elastic %s: constraints violated by %g", variant, ex)
		}
		row := ElasticRow{Variant: variant, Utility: ch.ExpectedLoss}
		var nIn, nOut int
		for x := 0; x < gr.NumCells(); x++ {
			if sensitive[x] {
				row.PrSameSensitive += ch.ProbSame(x)
				nIn++
			} else {
				row.PrSameOther += ch.ProbSame(x)
				nOut++
			}
		}
		row.PrSameSensitive /= float64(nIn)
		row.PrSameOther /= float64(nOut)
		adv, err := districtAdversaryError(gr, ch.K, pw, sensitive)
		if err != nil {
			return err
		}
		row.AdvErrSensitive = adv
		res.Rows = append(res.Rows, row)
		return nil
	}

	uniform := make([]float64, gr.NumCells())
	for i := range uniform {
		uniform[i] = 1
	}
	if err := build("uniform metric (standard GeoInd)", uniform); err != nil {
		return nil, err
	}
	if err := build("elastic metric (district sens 0.3)", sens); err != nil {
		return nil, err
	}
	return res, nil
}

// districtAdversaryError computes the Bayesian adversary's expected error
// restricted to true locations inside the district.
func districtAdversaryError(g *grid.Grid, k, pw []float64, district map[int]bool) (float64, error) {
	restricted := make([]float64, len(pw))
	total := 0.0
	for x, w := range pw {
		if district[x] {
			restricted[x] = w
			total += w
		}
	}
	if total == 0 {
		// No data mass in the district; fall back to uniform over it.
		for x := range restricted {
			if district[x] {
				restricted[x] = 1
			}
		}
	}
	return opt.AdversaryError(g, k, restricted, geo.Euclidean)
}

// Table renders the elastic analysis.
func (r *ElasticResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: elastic distinguishability metric (Gowalla, g=%d, eps=%.1f)", r.G, r.Eps),
		Columns: []string{"variant", "PrSame_district", "PrSame_elsewhere",
			"adv_error_district_km", "utility_loss_km"},
		Notes: []string{
			"elastic metric of Chatzikokolakis et al. [6]: a 2x2 district with sensitivity 0.3 accumulates distinguishability 3.3x slower",
			"expected: district Pr[x|x] drops and adversary error there rises, at a modest overall utility cost",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, f3(row.PrSameSensitive), f3(row.PrSameOther),
			f3(row.AdvErrSensitive), f3(row.Utility))
	}
	return t
}
