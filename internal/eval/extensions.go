package eval

import (
	"fmt"
	"math"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// ---------------------------------------------------------------------------
// Extension 1: privacy audit — empirical effective epsilon.
//
// The paper argues (§4, end) that MSM satisfies GeoInd by composability. The
// audit quantifies this end to end: it materializes the exact leaf-to-leaf
// channel of a small MSM instance and reports the maximum observed
// distinguishability level
//
//	eff(x, x') = max_z [ln K(x)(z) - ln K(x')(z)] / d(x, x'),
//
// the per-km epsilon an adversary actually faces, compared with the nominal
// budget. For the flat OPT mechanism the same statistic must be <= eps by
// construction; for MSM it can exceed eps at short ranges because coarser
// levels operate on snapped (cell-center) distances — the audit makes that
// gap measurable instead of hidden.

// AuditRow is one audited mechanism.
type AuditRow struct {
	Mechanism  string
	NominalEps float64
	// MaxEffEps is the worst-case effective epsilon over all leaf pairs.
	MaxEffEps float64
	// MaxExcessFar is the maximum effective epsilon over pairs at least one
	// leaf-cell diagonal apart (distinguishability at range).
	MaxEffEpsFar float64
}

// AuditResult is the privacy-audit table.
type AuditResult struct {
	Rows []AuditRow
}

// RunPrivacyAudit audits OPT and a two-level MSM at matching effective
// granularity on the Gowalla prior.
func (c *Context) RunPrivacyAudit(eps float64, fanout int) (*AuditResult, error) {
	res := &AuditResult{}
	ds := c.Gowalla
	eff := fanout * fanout

	// Flat OPT at the effective granularity.
	gr, err := grid.New(ds.Region(), eff)
	if err != nil {
		return nil, err
	}
	pw := prior.FromPoints(gr, ds.Points()).Weights()
	ch, err := opt.Build(eps, gr, pw, geo.Euclidean, nil)
	if err != nil {
		return nil, err
	}
	maxAll, maxFar := effectiveEps(gr, ch.K)
	res.Rows = append(res.Rows, AuditRow{
		Mechanism: fmt.Sprintf("OPT(g=%d)", eff), NominalEps: eps,
		MaxEffEps: maxAll, MaxEffEpsFar: maxFar,
	})

	// Two-level MSM at the same effective granularity.
	m, err := c.buildMSM(ds, msmParams{eps: eps, g: fanout, rho: DefaultRho,
		metric: geo.Euclidean, forceHeight: 2})
	if err != nil {
		return nil, err
	}
	k, err := m.ExactChannel()
	if err != nil {
		return nil, err
	}
	maxAll, maxFar = effectiveEps(m.LeafGrid(), k)
	res.Rows = append(res.Rows, AuditRow{
		Mechanism: fmt.Sprintf("MSM(g=%d,h=2)", fanout), NominalEps: eps,
		MaxEffEps: maxAll, MaxEffEpsFar: maxFar,
	})
	return res, nil
}

// effectiveEps scans all ordered cell pairs of a channel and returns the
// maximum ln-ratio per unit distance, over all pairs and over "far" pairs
// (at least one cell diagonal apart).
func effectiveEps(g *grid.Grid, k []float64) (maxAll, maxFar float64) {
	n := g.NumCells()
	centers := g.Centers()
	w, h := g.CellSize()
	diag := math.Hypot(w, h)
	logK := make([]float64, len(k))
	for i, v := range k {
		if v <= 0 {
			logK[i] = math.Inf(-1)
		} else {
			logK[i] = math.Log(v)
		}
	}
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			d := centers[x].Dist(centers[xp])
			worst := math.Inf(-1)
			for z := 0; z < n; z++ {
				if r := logK[x*n+z] - logK[xp*n+z]; r > worst {
					worst = r
				}
			}
			e := worst / d
			if e > maxAll {
				maxAll = e
			}
			if d > diag*1.001 && e > maxFar {
				maxFar = e
			}
		}
	}
	return maxAll, maxFar
}

// Table renders the audit.
func (r *AuditResult) Table() *Table {
	t := &Table{
		Title:   "Extension: end-to-end privacy audit (empirical effective epsilon)",
		Columns: []string{"mechanism", "nominal_eps", "max_eff_eps", "max_eff_eps_far"},
		Notes: []string{
			"effective eps = max over cell pairs of ln-ratio / distance",
			"OPT satisfies eff <= nominal by construction; MSM can exceed it at sub-cell ranges because coarse levels act on snapped distances (composability holds per level)",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, fmt.Sprintf("%.2f", row.NominalEps), f3(row.MaxEffEps), f3(row.MaxEffEpsFar))
	}
	return t
}

// ---------------------------------------------------------------------------
// Extension 2: budget-allocation ablation.
//
// DESIGN.md calls out the budget split as the key design choice of §5. The
// ablation compares, at identical total budget and effective granularity:
// the paper's Problem-1 split, a uniform split, a reversed (leaf-heavy,
// Cormode-style) split, and the flat single-level mechanism.

// AblationRow is one allocation strategy measurement.
type AblationRow struct {
	Strategy    string
	Budgets     []float64
	UtilityLoss float64
}

// AblationResult is the ablation table.
type AblationResult struct {
	Eps    float64
	G      int
	Rows   []AblationRow
	Metric geo.Metric
}

// RunBudgetAblation measures MSM utility under different budget splits on
// the Gowalla dataset with a two-level index of the given fanout.
func (c *Context) RunBudgetAblation(eps float64, fanout int) (*AblationResult, error) {
	res := &AblationResult{Eps: eps, G: fanout, Metric: geo.Euclidean}
	ds := c.Gowalla

	paper, m, err := c.msmUtility(ds, msmParams{eps: eps, g: fanout, rho: DefaultRho,
		metric: geo.Euclidean, forceHeight: 2})
	if err != nil {
		return nil, err
	}
	paperSplit := m.Allocation().Eps
	res.Rows = append(res.Rows, AblationRow{"problem-1 split (paper)", paperSplit, paper})

	uniform := []float64{eps / 2, eps / 2}
	uniU, _, err := c.msmUtility(ds, msmParams{g: fanout, rho: DefaultRho,
		metric: geo.Euclidean, custom: uniform, eps: eps})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{"uniform split", uniform, uniU})

	reversed := []float64{paperSplit[len(paperSplit)-1], paperSplit[0]}
	revU, _, err := c.msmUtility(ds, msmParams{g: fanout, rho: DefaultRho,
		metric: geo.Euclidean, custom: reversed, eps: eps})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{"reversed split (leaf-heavy)", reversed, revU})

	flat, _, err := c.msmUtility(ds, msmParams{eps: eps, g: fanout, rho: DefaultRho,
		metric: geo.Euclidean, forceHeight: 1})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{"flat single level (OPT g)", []float64{eps}, flat})
	return res, nil
}

// Table renders the ablation.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: budget-split ablation (Gowalla, eps=%.1f, fanout=%d, two levels)", r.Eps, r.G),
		Columns: []string{"strategy", "budgets", "utility_loss_km"},
		Notes:   []string{"paper's finding: allocating more relative budget to upper levels beats leaf-heavy splits (opposite of the DP histogram setting)"},
	}
	for _, row := range r.Rows {
		bs := ""
		for i, b := range row.Budgets {
			if i > 0 {
				bs += "+"
			}
			bs += fmt.Sprintf("%.3f", b)
		}
		t.AddRow(row.Strategy, bs, f3(row.UtilityLoss))
	}
	return t
}
