package eval

import (
	"fmt"
	"math"
	"time"

	"geoind/internal/adaptive"
	"geoind/internal/dataset"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// ---------------------------------------------------------------------------
// Extension 3: adaptive (k-d style) index vs uniform grid — the paper's §8
// future work ("more complex index structures which can adjust better to
// skewed distributions of priors").

// AdaptiveRow compares grid MSM, the k-d adaptive MSM and the quadtree MSM
// at one budget.
type AdaptiveRow struct {
	Dataset      string
	Eps          float64
	GridLoss     float64
	AdaptiveLoss float64
	QuadLoss     float64
	GridHeight   int
	MeanLeafSide float64 // adaptive: prior-weighted mean leaf side (km)
	QuadDepth    int     // quadtree: deepest level actually built
}

// AdaptiveResult is the adaptive-vs-grid comparison.
type AdaptiveResult struct {
	Rows []AdaptiveRow
}

// RunAdaptiveComparison measures the uniform-grid MSM against the two
// adaptive index variants (mass-balanced k-d tree; density-driven quadtree)
// at equal budget and rho on both datasets.
func (c *Context) RunAdaptiveComparison(epsList []float64, fanout int) (*AdaptiveResult, error) {
	res := &AdaptiveResult{}
	for _, ds := range c.Datasets() {
		for _, eps := range epsList {
			gridLoss, m, err := c.msmUtility(ds, msmParams{eps: eps, g: fanout, rho: DefaultRho, metric: geo.Euclidean})
			if err != nil {
				return nil, err
			}
			am, err := adaptive.New(adaptive.Config{
				Eps: eps, Region: ds.Region(), Fanout: fanout,
				Rho: DefaultRho, Metric: geo.Euclidean, PriorPoints: ds.Points(),
			}, c.Seed)
			if err != nil {
				return nil, err
			}
			qm, err := adaptive.NewQuad(adaptive.QuadConfig{
				Eps: eps, Region: ds.Region(), Rho: DefaultRho,
				Metric: geo.Euclidean, PriorPoints: ds.Points(),
			}, c.Seed)
			if err != nil {
				return nil, err
			}
			reqs := c.requests(ds, 101)
			rng := c.rng(202)
			var aLoss, qLoss float64
			for _, x := range reqs {
				z, err := am.ReportWith(x, rng)
				if err != nil {
					return nil, err
				}
				aLoss += x.Dist(z)
				zq, err := qm.ReportWith(x, rng)
				if err != nil {
					return nil, err
				}
				qLoss += x.Dist(zq)
			}
			aLoss /= float64(len(reqs))
			qLoss /= float64(len(reqs))
			res.Rows = append(res.Rows, AdaptiveRow{
				Dataset: ds.Name, Eps: eps,
				GridLoss: gridLoss, AdaptiveLoss: aLoss, QuadLoss: qLoss,
				GridHeight: m.Height(), MeanLeafSide: am.MeanLeafSide(),
				QuadDepth: qm.MaxDepthUsed(),
			})
		}
	}
	return res, nil
}

// Table renders the adaptive comparison.
func (r *AdaptiveResult) Table() *Table {
	t := &Table{
		Title: "Extension: uniform-grid MSM vs adaptive (k-d) and quadtree MSM (Euclidean)",
		Columns: []string{"dataset", "eps", "grid_MSM_km", "kd_MSM_km", "quad_MSM_km",
			"grid_height", "kd_leaf_km", "quad_depth"},
		Notes: []string{"paper §8 future work: index structures that adjust to skewed priors (k-d trees, quadtrees)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprintf("%.1f", row.Eps), f3(row.GridLoss),
			f3(row.AdaptiveLoss), f3(row.QuadLoss),
			fmt.Sprintf("%d", row.GridHeight), f3(row.MeanLeafSide), fmt.Sprintf("%d", row.QuadDepth))
	}
	return t
}

// ---------------------------------------------------------------------------
// Extension 4: spanner-approximated OPT — the constraint-reduction technique
// of Bordenabe et al. [2] as an ablation of the full LP.

// SpannerRow is one spanner configuration measurement.
type SpannerRow struct {
	Variant      string
	Stretch      float64
	PairFamilies int
	SolveSeconds float64
	ExpectedLoss float64
	GeoIndExcess float64 // max violation of the FULL constraint set (<=0 ok)
}

// SpannerResult is the spanner ablation.
type SpannerResult struct {
	G    int
	Eps  float64
	Rows []SpannerRow
}

// RunSpannerAblation compares the full OPT LP against spanner-reduced
// variants on the Gowalla prior at granularity g. Exact and reduced channels
// both go through the shared channel store — reduced ones keyed by their
// stretch-factor variant — so with a Context.CacheDir a repeated run reloads
// every variant from its snapshot instead of re-solving (SolveSeconds then
// measures the load).
func (c *Context) RunSpannerAblation(g int, eps float64, stretches []float64) (*SpannerResult, error) {
	res := &SpannerResult{G: g, Eps: eps}
	gr, err := grid.New(c.Gowalla.Region(), g)
	if err != nil {
		return nil, err
	}
	pw := prior.FromPoints(gr, c.Gowalla.Points()).Weights()

	start := time.Now()
	full, err := c.storedChannel(
		optKey(c.Gowalla.Name, c.Gowalla.Region(), pw, eps, g, geo.Euclidean, 0),
		func() (*opt.Channel, error) { return opt.Build(eps, gr, pw, geo.Euclidean, nil) })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, SpannerRow{
		Variant: "full LP", Stretch: 1,
		PairFamilies: full.PairFamilies,
		SolveSeconds: time.Since(start).Seconds(),
		ExpectedLoss: full.ExpectedLoss,
		GeoIndExcess: opt.VerifyGeoInd(gr, eps, full.K),
	})
	for _, st := range stretches {
		st := st
		start = time.Now()
		ch, err := c.storedChannel(
			optKey(c.Gowalla.Name, c.Gowalla.Region(), pw, eps, g, geo.Euclidean, math.Float64bits(st)),
			func() (*opt.Channel, error) { return opt.BuildSpanner(eps, gr, pw, geo.Euclidean, st, nil) })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SpannerRow{
			Variant: fmt.Sprintf("spanner %.2f", st), Stretch: st,
			PairFamilies: ch.PairFamilies,
			SolveSeconds: time.Since(start).Seconds(),
			ExpectedLoss: ch.ExpectedLoss,
			GeoIndExcess: opt.VerifyGeoInd(gr, eps, ch.K),
		})
	}
	return res, nil
}

// Table renders the spanner ablation.
func (r *SpannerResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: spanner-reduced OPT (Gowalla, g=%d, eps=%.1f)", r.G, r.Eps),
		Columns: []string{"variant", "pair_families", "solve_s", "expected_loss_km", "geoind_excess"},
		Notes:   []string{"all variants must satisfy the FULL GeoInd constraint set (excess <= 0)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprintf("%d", row.PairFamilies), f3(row.SolveSeconds),
			f4(row.ExpectedLoss), fmt.Sprintf("%.1e", row.GeoIndExcess))
	}
	return t
}

// ---------------------------------------------------------------------------
// Extension 5: privacy-utility plane against a Bayesian adversary.

// AdversaryRow is one (mechanism, eps) point of the privacy-utility plane.
type AdversaryRow struct {
	Mechanism string
	Eps       float64
	// Utility is the expected loss of the channel (lower = better service).
	Utility float64
	// AdvError is the optimal Bayesian adversary's expected inference error
	// (higher = better privacy).
	AdvError float64
}

// AdversaryResult is the adversary analysis.
type AdversaryResult struct {
	G    int
	Rows []AdversaryRow
}

// RunAdversary computes the privacy-utility plane at granularity g (cells
// per side) for PL+remap, OPT, OPT+remap and the exact MSM channel (fanout
// sqrt(g), two levels), on the Gowalla prior.
func (c *Context) RunAdversary(g int, epsList []float64) (*AdversaryResult, error) {
	res := &AdversaryResult{G: g}
	ds := c.Gowalla
	gr, err := grid.New(ds.Region(), g)
	if err != nil {
		return nil, err
	}
	pw := prior.FromPoints(gr, ds.Points()).Weights()

	add := func(name string, eps float64, k []float64) error {
		util, err := opt.ExpectedLossOf(gr, k, pw, geo.Euclidean)
		if err != nil {
			return err
		}
		adv, err := opt.AdversaryError(gr, k, pw, geo.Euclidean)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AdversaryRow{Mechanism: name, Eps: eps, Utility: util, AdvError: adv})
		return nil
	}

	fanout := intSqrt(g)
	for _, eps := range epsList {
		pl, err := opt.PLChannel(eps, gr, 3)
		if err != nil {
			return nil, err
		}
		if err := add("PL+remap", eps, pl.K); err != nil {
			return nil, err
		}
		och, err := c.optChannelCached(ds, eps, g)
		if err != nil {
			return nil, err
		}
		if err := add("OPT", eps, och.K); err != nil {
			return nil, err
		}
		re, err := opt.Remap(och, pw, geo.Euclidean)
		if err != nil {
			return nil, err
		}
		if err := add("OPT+remap", eps, re.K); err != nil {
			return nil, err
		}
		if fanout*fanout == g {
			m, err := c.buildMSM(ds, msmParams{eps: eps, g: fanout, rho: DefaultRho,
				metric: geo.Euclidean, forceHeight: 2})
			if err != nil {
				return nil, err
			}
			k, err := m.ExactChannel()
			if err != nil {
				return nil, err
			}
			if err := add("MSM(h=2)", eps, k); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// optChannelCached builds (without timing) an OPT channel.
func (c *Context) optChannelCached(ds *dataset.Dataset, eps float64, g int) (*opt.Channel, error) {
	ch, _, err := c.optChannel(ds, eps, g, geo.Euclidean)
	return ch, err
}

func intSqrt(n int) int {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return 0
}

// Table renders the adversary analysis.
func (r *AdversaryResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: Bayesian-adversary privacy vs utility (Gowalla, %dx%d cells)", r.G, r.G),
		Columns: []string{"mechanism", "eps", "utility_loss_km", "adversary_error_km"},
		Notes: []string{
			"utility: expected loss (lower better for user); adversary error: optimal inference attack's expected error (higher better for user)",
			"OPT+remap shows post-processing restoring utility without changing the adversary's view beyond the remap",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, fmt.Sprintf("%.1f", row.Eps), f3(row.Utility), f3(row.AdvError))
	}
	return t
}
