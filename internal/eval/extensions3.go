package eval

import (
	"fmt"
	"math/rand/v2"

	"geoind/internal/geo"
	"geoind/internal/laplace"
	"geoind/internal/trajectory"
)

// ---------------------------------------------------------------------------
// Extension 6: trajectory protection — independent composition vs the
// predictive mechanism on correlated mobility traces.

// TrajectoryRow compares the two trace reporters at one mobility profile.
type TrajectoryRow struct {
	Profile        string
	Steps          int
	IndSpent       float64
	PredSpent      float64
	IndLoss        float64
	PredLoss       float64
	PredFreshShare float64
	// IndAdvErr/PredAdvErr are the empirical Bayesian adversary's mean
	// localization error (km) against each reporter's releases: re-released
	// predictions repeat one observation, so this is where any
	// temporal-correlation leakage of the predictive mechanism would show.
	IndAdvErr  float64
	PredAdvErr float64
}

// TrajectoryResult is the trajectory comparison.
type TrajectoryResult struct {
	Eps  float64
	Rows []TrajectoryRow
}

// RunTrajectory generates mobility traces at three correlation profiles and
// compares total budget spend and utility between independent reporting and
// the predictive mechanism at the same per-report budget.
func (c *Context) RunTrajectory(epsReport float64, steps int) (*TrajectoryResult, error) {
	res := &TrajectoryResult{Eps: epsReport}
	profiles := []struct {
		name string
		stay float64
		jump float64
	}{
		{"sedentary (95% dwell)", 0.95, 0.02},
		{"mixed (85% dwell)", 0.85, 0.05},
		{"mobile (60% dwell)", 0.60, 0.15},
	}
	region := geo.NewSquare(20)
	anchors := []geo.Point{{X: 5, Y: 5}, {X: 15, Y: 15}, {X: 10, Y: 3}, {X: 3, Y: 17}}
	pcfg := trajectory.PredictiveConfig{Theta: 4.0, EpsTest: epsReport / 4}

	for pi, prof := range profiles {
		traces, err := trajectory.Generate(10, trajectory.GenConfig{
			Region: region, Anchors: anchors, Steps: steps,
			StayProb: prof.stay, LocalSigma: 0.05,
			JumpProb: prof.jump, WalkSigma: 0.5,
			Seed: c.Seed + uint64(pi),
		})
		if err != nil {
			return nil, err
		}
		row := TrajectoryRow{Profile: prof.name, Steps: steps}
		pts := make([][]geo.Point, 0, len(traces))
		indRuns := make([][]trajectory.Step, 0, len(traces))
		predRuns := make([][]trajectory.Step, 0, len(traces))
		for ti, tr := range traces {
			indMech, err := laplace.New(epsReport, c.rng(uint64(1000+ti)))
			if err != nil {
				return nil, err
			}
			ind, err := trajectory.Independent(plAdapter{indMech}, tr.Points)
			if err != nil {
				return nil, err
			}
			indSum, err := trajectory.Summarize(tr.Points, ind)
			if err != nil {
				return nil, err
			}
			predMech, err := laplace.New(epsReport, c.rng(uint64(2000+ti)))
			if err != nil {
				return nil, err
			}
			pred, err := trajectory.Predictive(plAdapter{predMech}, tr.Points, pcfg,
				rand.New(rand.NewPCG(c.Seed, uint64(3000+ti))))
			if err != nil {
				return nil, err
			}
			predSum, err := trajectory.Summarize(tr.Points, pred)
			if err != nil {
				return nil, err
			}
			row.IndSpent += indSum.TotalSpent
			row.PredSpent += predSum.TotalSpent
			row.IndLoss += indSum.MeanLoss
			row.PredLoss += predSum.MeanLoss
			row.PredFreshShare += float64(predSum.Fresh) / float64(predSum.Steps)
			pts = append(pts, tr.Points)
			indRuns = append(indRuns, ind)
			predRuns = append(predRuns, pred)
		}
		n := float64(len(traces))
		row.IndSpent /= n
		row.PredSpent /= n
		row.IndLoss /= n
		row.PredLoss /= n
		row.PredFreshShare /= n
		acfg := trajectory.AdversaryConfig{Region: region, Granularity: 24, Eps: epsReport}
		if row.IndAdvErr, err = trajectory.EmpiricalAdversaryError(acfg, pts, indRuns); err != nil {
			return nil, err
		}
		if row.PredAdvErr, err = trajectory.EmpiricalAdversaryError(acfg, pts, predRuns); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// plAdapter exposes laplace.Mechanism as a trajectory.Reporter.
type plAdapter struct{ m *laplace.Mechanism }

func (a plAdapter) Report(x geo.Point) (geo.Point, error) { return a.m.Sample(x), nil }
func (a plAdapter) Epsilon() float64                      { return a.m.Epsilon() }

// Table renders the trajectory comparison.
func (r *TrajectoryResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: trajectory protection, independent vs predictive (PL, eps=%.1f/report)", r.Eps),
		Columns: []string{"mobility profile", "steps", "ind_spent", "pred_spent",
			"ind_loss_km", "pred_loss_km", "pred_fresh_share", "ind_adv_err_km", "pred_adv_err_km"},
		Notes: []string{
			"predictive mechanism of Chatzikokolakis et al. (PETS 2014): a cheap private test re-releases the previous report while the user dwells",
			"savings grow with temporal correlation; utility stays comparable",
			"adv_err: empirical Bayesian attacker's mean localization error (larger = more private); predictive should not fall below independent",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Profile, fmt.Sprintf("%d", row.Steps), f3(row.IndSpent), f3(row.PredSpent),
			f3(row.IndLoss), f3(row.PredLoss), f3(row.PredFreshShare),
			f3(row.IndAdvErr), f3(row.PredAdvErr))
	}
	return t
}
