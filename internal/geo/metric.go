package geo

import "fmt"

// Metric identifies a utility-loss metric dQ(., .) from §2.2 of the paper.
// Note that a utility-loss metric is distinct from the distinguishability
// metric of the GeoInd definition (which is always the Euclidean distance in
// this library), even though Euclidean distance can serve as both.
type Metric int

const (
	// Euclidean measures the straight-line distance (km) between the actual
	// and reported locations: the extra distance travelled by the user.
	Euclidean Metric = iota
	// SquaredEuclidean measures the squared distance (km^2), a proxy for
	// the growth of the result set the user must filter (§2.2).
	SquaredEuclidean
)

// Loss returns the utility loss between actual location a and reported
// location b under the metric.
func (m Metric) Loss(a, b Point) float64 {
	switch m {
	case SquaredEuclidean:
		return a.Dist2(b)
	default:
		return a.Dist(b)
	}
}

// Valid reports whether m is a known metric.
func (m Metric) Valid() bool { return m == Euclidean || m == SquaredEuclidean }

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case SquaredEuclidean:
		return "squared-euclidean"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Unit returns the display unit of the metric ("km" or "km^2").
func (m Metric) Unit() string {
	if m == SquaredEuclidean {
		return "km^2"
	}
	return "km"
}
