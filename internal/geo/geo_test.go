package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		d    float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{0, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.d, 1e-12) {
			t.Errorf("Dist(%v,%v)=%g want %g", c.p, c.q, got, c.d)
		}
		if got := c.p.Dist2(c.q); !almostEqual(got, c.d*c.d, 1e-12) {
			t.Errorf("Dist2(%v,%v)=%g want %g", c.p, c.q, got, c.d*c.d)
		}
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 100), math.Mod(ay, 100)}
		b := Point{math.Mod(bx, 100), math.Mod(by, 100)}
		c := Point{math.Mod(cx, 100), math.Mod(cy, 100)}
		if math.IsNaN(a.X + a.Y + b.X + b.Y + c.X + c.Y) {
			return true
		}
		sym := almostEqual(a.Dist(b), b.Dist(a), 1e-12)
		tri := a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
		return sym && tri
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) {
		t.Error("min corner should be contained")
	}
	if r.Contains(Point{10, 5}) || r.Contains(Point{5, 10}) {
		t.Error("max edges should be exclusive")
	}
	if !r.ContainsClosed(Point{10, 10}) {
		t.Error("ContainsClosed should include max corner")
	}
	if got := r.Center(); got != (Point{5, 5}) {
		t.Errorf("Center=%v want (5,5)", got)
	}
	if r.Width() != 10 || r.Height() != 10 {
		t.Errorf("Width/Height=%g/%g want 10/10", r.Width(), r.Height())
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{5, -3}, Point{5, 0}},
	}
	for _, c := range cases {
		got := r.Clamp(c.in)
		if !almostEqual(got.X, c.want.X, 1e-9) || !almostEqual(got.Y, c.want.Y, 1e-9) {
			t.Errorf("Clamp(%v)=%v want %v", c.in, got, c.want)
		}
	}
	// Clamping a point past the max edge must land strictly inside.
	got := r.Clamp(Point{20, 20})
	if !r.Contains(got) {
		t.Errorf("Clamp(20,20)=%v not contained in %v", got, r)
	}
}

func TestClampAlwaysInside(t *testing.T) {
	r := Rect{0, 0, 20, 20}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		return r.Contains(r.Clamp(Point{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRegionValidation(t *testing.T) {
	if _, err := NewRegion(2, 2, 1, 3); err == nil {
		t.Error("inverted lat box should error")
	}
	if _, err := NewRegion(1, 3, 2, 2); err == nil {
		t.Error("inverted lon box should error")
	}
	if _, err := NewRegion(-100, 0, 0, 1); err == nil {
		t.Error("out-of-range lat should error")
	}
}

// TestRegionGowallaBox verifies the paper's Austin bounding box (§6.1)
// projects to roughly a 20x20 km^2 area.
func TestRegionGowallaBox(t *testing.T) {
	r, err := NewRegion(30.1927, -97.8698, 30.3723, -97.6618)
	if err != nil {
		t.Fatal(err)
	}
	if r.Side < 18 || r.Side > 22 {
		t.Errorf("Austin box side=%g km, want ~20", r.Side)
	}
}

// TestRegionYelpBox verifies the paper's Las Vegas bounding box (§6.1).
func TestRegionYelpBox(t *testing.T) {
	r, err := NewRegion(36.0645, -115.291, 36.2442, -115.069)
	if err != nil {
		t.Fatal(err)
	}
	if r.Side < 18 || r.Side > 22 {
		t.Errorf("Las Vegas box side=%g km, want ~20", r.Side)
	}
}

func TestProjectRoundTrip(t *testing.T) {
	r, err := NewRegion(30.1927, -97.8698, 30.3723, -97.6618)
	if err != nil {
		t.Fatal(err)
	}
	f := func(u, v float64) bool {
		u = math.Abs(math.Mod(u, 1))
		v = math.Abs(math.Mod(v, 1))
		ll := LatLon{
			Lat: r.Bounds.MinLat + u*(r.Bounds.MaxLat-r.Bounds.MinLat),
			Lon: r.Bounds.MinLon + v*(r.Bounds.MaxLon-r.Bounds.MinLon),
		}
		p := r.Project(ll)
		back := r.Unproject(p)
		return almostEqual(back.Lat, ll.Lat, 1e-9) && almostEqual(back.Lon, ll.Lon, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectCorners(t *testing.T) {
	r, err := NewRegion(30, -98, 30.2, -97.8)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Project(LatLon{30, -98})
	if !almostEqual(p.X, 0, 1e-9) || !almostEqual(p.Y, 0, 1e-9) {
		t.Errorf("min corner projects to %v, want origin", p)
	}
	p = r.Project(LatLon{30.2, -97.8})
	if !almostEqual(p.X, r.Side, 1e-9) || !almostEqual(p.Y, r.Side, 1e-9) {
		t.Errorf("max corner projects to %v, want (%g,%g)", p, r.Side, r.Side)
	}
}

func TestSquareRegion(t *testing.T) {
	r := SquareRegion(20)
	if r.Side != 20 {
		t.Fatalf("Side=%g want 20", r.Side)
	}
	rect := r.Rect()
	if rect.Width() != 20 || rect.Height() != 20 {
		t.Errorf("Rect=%v want 20x20", rect)
	}
}

func TestHaversineKnown(t *testing.T) {
	// Austin to Las Vegas is roughly 1750 km.
	austin := LatLon{Lat: 30.2672, Lon: -97.7431}
	vegas := LatLon{Lat: 36.1699, Lon: -115.1398}
	d := HaversineKm(austin, vegas)
	if d < 1700 || d > 1800 {
		t.Errorf("Austin-Las Vegas = %g km, want ~1750", d)
	}
	if HaversineKm(austin, austin) != 0 {
		t.Error("zero distance expected for identical points")
	}
	// One degree of latitude is ~111.2 km anywhere.
	d = HaversineKm(LatLon{Lat: 10, Lon: 50}, LatLon{Lat: 11, Lon: 50})
	if math.Abs(d-111.2) > 0.5 {
		t.Errorf("1 degree latitude = %g km, want ~111.2", d)
	}
}

// TestProjectionDistortion: over the paper's city-scale boxes, planar
// distances after projection match great-circle distances to well under 1%.
func TestProjectionDistortion(t *testing.T) {
	r, err := NewRegion(30.1927, -97.8698, 30.3723, -97.6618)
	if err != nil {
		t.Fatal(err)
	}
	rng := func(i int) float64 { return math.Mod(float64(i)*0.6180339887, 1) }
	worst := 0.0
	for i := 0; i < 200; i++ {
		a := LatLon{
			Lat: r.Bounds.MinLat + rng(2*i)*(r.Bounds.MaxLat-r.Bounds.MinLat),
			Lon: r.Bounds.MinLon + rng(2*i+1)*(r.Bounds.MaxLon-r.Bounds.MinLon),
		}
		b := LatLon{
			Lat: r.Bounds.MinLat + rng(2*i+401)*(r.Bounds.MaxLat-r.Bounds.MinLat),
			Lon: r.Bounds.MinLon + rng(2*i+800)*(r.Bounds.MaxLon-r.Bounds.MinLon),
		}
		truth := HaversineKm(a, b)
		if truth < 0.5 {
			continue
		}
		planar := r.Project(a).Dist(r.Project(b))
		if rel := math.Abs(planar-truth) / truth; rel > worst {
			worst = rel
		}
	}
	if worst > 0.01 {
		t.Errorf("projection distortion %.4f%% exceeds 1%%", worst*100)
	}
}

func TestMetricLoss(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 3, Y: 4}
	if got := Euclidean.Loss(a, b); got != 5 {
		t.Errorf("Euclidean.Loss=%g want 5", got)
	}
	if got := SquaredEuclidean.Loss(a, b); got != 25 {
		t.Errorf("SquaredEuclidean.Loss=%g want 25", got)
	}
	// Unknown metrics fall back to Euclidean in Loss but fail Valid.
	if !Euclidean.Valid() || !SquaredEuclidean.Valid() {
		t.Error("standard metrics should be valid")
	}
	if Metric(42).Valid() {
		t.Error("unknown metric should be invalid")
	}
}

func TestMetricStrings(t *testing.T) {
	if Euclidean.String() != "euclidean" || SquaredEuclidean.String() != "squared-euclidean" {
		t.Errorf("names: %s / %s", Euclidean, SquaredEuclidean)
	}
	if Metric(42).String() == "" {
		t.Error("unknown metric should still stringify")
	}
	if Euclidean.Unit() != "km" || SquaredEuclidean.Unit() != "km^2" {
		t.Errorf("units: %s / %s", Euclidean.Unit(), SquaredEuclidean.Unit())
	}
}

func TestPointAddAndString(t *testing.T) {
	p := Point{X: 1, Y: 2}.Add(0.5, -0.5)
	if p != (Point{X: 1.5, Y: 1.5}) {
		t.Errorf("Add=%v", p)
	}
	if p.String() == "" || (Rect{}).String() == "" {
		t.Error("String() should be non-empty")
	}
}
