package geo

import "math"

// HaversineKm returns the great-circle distance between two geodetic
// coordinates in kilometres. It is the ground-truth distance the
// equirectangular projection approximates; the projection tests use it to
// bound the distortion over city-scale regions (well under 0.1% for the
// paper's 20 km boxes).
func HaversineKm(a, b LatLon) float64 {
	const deg = math.Pi / 180
	lat1, lat2 := a.Lat*deg, b.Lat*deg
	dLat := (b.Lat - a.Lat) * deg
	dLon := (b.Lon - a.Lon) * deg
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}
