// Package geo provides planar geometry primitives used throughout the
// library: points in kilometre coordinates, distances, axis-aligned
// rectangles, and an equirectangular projection that maps a latitude /
// longitude bounding box (a "city area" in the paper's terminology) onto a
// planar region measured in kilometres.
//
// The paper (§3.1) works over a square data domain of side length L; any
// rectangular region is scaled to fit that assumption. Project and Region
// implement exactly that preprocessing step.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by the equirectangular
// projection. The paper's datasets cover 20x20 km^2 city areas, where the
// equirectangular approximation is accurate to well under 0.1%.
const EarthRadiusKm = 6371.0088

// Point is a location in planar kilometre coordinates.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in kilometres.
// This is the distinguishability metric d(., .) of the paper (§2.1) and the
// first utility-loss metric (§2.2).
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q, the second
// utility-loss metric of the paper (§2.2).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [MinX, MaxX) x [MinY, MaxY) in planar
// kilometre coordinates.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewSquare returns the square region [0, side) x [0, side).
func NewSquare(side float64) Rect { return Rect{0, 0, side, side} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r, treating the maximum edges as
// exclusive so that adjacent cells of a grid partition the plane.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies inside r including all edges.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), math.Nextafter(r.MaxX, r.MinX)),
		Y: math.Min(math.Max(p.Y, r.MinY), math.Nextafter(r.MaxY, r.MinY)),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f)x[%.3f,%.3f)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// LatLon is a geodetic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Region describes a geographic bounding box together with its planar
// projection. It is the "set of maps annotated with additional pre-computed
// information" downloaded offline in the paper's system model (§3.1).
type Region struct {
	// Bounds is the geodetic bounding box.
	Bounds struct{ MinLat, MinLon, MaxLat, MaxLon float64 }
	// Side is the side length L (km) of the square planar domain.
	Side float64
	// scaleX, scaleY convert degrees to km within the box.
	scaleX, scaleY float64
}

// NewRegion builds a Region from a geodetic bounding box. The box is
// projected with an equirectangular projection centred on its mid-latitude
// and then scaled (independently per axis, as the paper prescribes for
// non-square regions) onto a square of side L = max(width, height).
func NewRegion(minLat, minLon, maxLat, maxLon float64) (*Region, error) {
	if maxLat <= minLat || maxLon <= minLon {
		return nil, fmt.Errorf("geo: invalid bounding box [%g,%g]x[%g,%g]", minLat, maxLat, minLon, maxLon)
	}
	if minLat < -90 || maxLat > 90 || minLon < -180 || maxLon > 180 {
		return nil, fmt.Errorf("geo: bounding box out of range [%g,%g]x[%g,%g]", minLat, maxLat, minLon, maxLon)
	}
	midLat := (minLat + maxLat) / 2 * math.Pi / 180
	kmPerDegLat := EarthRadiusKm * math.Pi / 180
	kmPerDegLon := kmPerDegLat * math.Cos(midLat)
	widthKm := (maxLon - minLon) * kmPerDegLon
	heightKm := (maxLat - minLat) * kmPerDegLat
	side := math.Max(widthKm, heightKm)
	r := &Region{Side: side}
	r.Bounds.MinLat, r.Bounds.MinLon = minLat, minLon
	r.Bounds.MaxLat, r.Bounds.MaxLon = maxLat, maxLon
	// Scale each axis so the full box maps onto [0, side); this equalizes
	// the range in each dimension exactly as footnote 3 of the paper
	// requires.
	r.scaleX = side / (maxLon - minLon)
	r.scaleY = side / (maxLat - minLat)
	return r, nil
}

// SquareRegion returns a purely planar Region of side km, for callers that
// already work in kilometre coordinates (e.g. synthetic datasets).
func SquareRegion(side float64) *Region {
	r := &Region{Side: side}
	r.Bounds.MinLat, r.Bounds.MinLon = 0, 0
	r.Bounds.MaxLat, r.Bounds.MaxLon = 1, 1
	r.scaleX = side
	r.scaleY = side
	return r
}

// Rect returns the planar extent of the region: [0, Side) x [0, Side).
func (r *Region) Rect() Rect { return NewSquare(r.Side) }

// Project maps a geodetic coordinate to planar kilometre coordinates.
// Coordinates outside the bounding box project outside [0, Side).
func (r *Region) Project(ll LatLon) Point {
	return Point{
		X: (ll.Lon - r.Bounds.MinLon) * r.scaleX,
		Y: (ll.Lat - r.Bounds.MinLat) * r.scaleY,
	}
}

// Unproject maps planar kilometre coordinates back to a geodetic coordinate.
func (r *Region) Unproject(p Point) LatLon {
	return LatLon{
		Lat: r.Bounds.MinLat + p.Y/r.scaleY,
		Lon: r.Bounds.MinLon + p.X/r.scaleX,
	}
}
