// Package budget implements the budget-allocation strategy of §5 of the
// paper: the analytical estimate Phi of the probability Pr[x|x] that an
// optimal GeoInd mechanism maps a cell to itself, the scalar optimization of
// Problem 1 (minimal budget achieving Phi >= rho), and the level-by-level
// allocation of Algorithm 2 that decides the index height h and the budget
// eps_i for every level of the hierarchical index.
//
// The core quantity is the 2-D lattice exponential sum
//
//	T(s) = sum_{(a,b) in Z^2} exp(-s * sqrt(a^2 + b^2)),   s = eps * cellSide,
//
// with Phi = 1/T (Eq. 7). For large s the sum is evaluated directly (it
// converges geometrically); for small s direct summation needs O(1/s^2)
// terms, so the package switches to the Poisson-summation expansion of
// Eq. (8)-(10):
//
//	T(s) = 2*pi/s^2 + sum_{k>=1} c_{2k-1} s^{2k-1},
//	c_{2k-1} = 4 * C(-3/2, k-1) * (2*pi)^{-2k} * zeta(k+1/2) * L(k+1/2, chi4),
//
// which converges for 0 < s < 2*pi. The two evaluations agree to ~1e-12 in
// their overlap region, which the tests verify.
package budget

import (
	"fmt"
	"math"

	"geoind/internal/mathx"
)

// seriesSwitch is the s threshold below which the series expansion is used.
const seriesSwitch = 0.5

// directCutoff is the exponent beyond which direct-sum terms are negligible
// (exp(-45) ~ 2.9e-20, far below float64 resolution of the leading term 1).
const directCutoff = 45.0

// LatticeSum returns T(s) for s > 0.
func LatticeSum(s float64) (float64, error) {
	if !(s > 0) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("budget: lattice sum argument s=%g must be positive and finite", s)
	}
	if s < seriesSwitch {
		return latticeSumSeries(s)
	}
	return latticeSumDirect(s), nil
}

// latticeSumDirect evaluates T(s) by summing lattice points out to the
// radius where terms fall below exp(-directCutoff), using the 4-fold
// symmetry of Z^2.
func latticeSumDirect(s float64) float64 {
	rMax := int(directCutoff/s) + 1
	total := 1.0 // the origin
	// Axis points (±a, 0) and (0, ±a): 4 per a.
	for a := 1; a <= rMax; a++ {
		t := math.Exp(-s * float64(a))
		if t == 0 {
			break
		}
		total += 4 * t
	}
	// Open-quadrant points (±a, ±b), a,b >= 1: 4 per (a, b).
	for a := 1; a <= rMax; a++ {
		fa := float64(a) * float64(a)
		added := false
		for b := a; ; b++ { // b >= a, count (a,b) and (b,a) via weight
			d := math.Sqrt(fa + float64(b)*float64(b))
			if s*d > directCutoff {
				break
			}
			w := 8.0 // (a,b) and (b,a) in each of 4 quadrants
			if b == a {
				w = 4
			}
			total += w * math.Exp(-s*d)
			added = true
		}
		if !added {
			break
		}
	}
	return total
}

// latticeSumSeries evaluates T(s) with the Eq. (8) expansion. Valid for
// 0 < s < 2*pi; accuracy degrades as s approaches 2*pi, so callers keep
// s below seriesSwitch where ~15 terms give full precision.
func latticeSumSeries(s float64) (float64, error) {
	if s >= 2*math.Pi {
		return 0, fmt.Errorf("budget: series expansion requires s < 2*pi, got %g", s)
	}
	total := 2 * math.Pi / (s * s)
	sPow := s // s^{2k-1}, starting at k=1
	for k := 1; k <= 60; k++ {
		c, err := seriesCoefficient(k)
		if err != nil {
			return 0, err
		}
		term := c * sPow
		total += term
		if math.Abs(term) < 1e-17*math.Abs(total) {
			return total, nil
		}
		sPow *= s * s
	}
	return total, nil
}

// coeffCache memoizes the c_{2k-1} coefficients (they are pure constants).
var coeffCache = map[int]float64{}

// seriesCoefficient returns c_{2k-1} of Eq. (9).
func seriesCoefficient(k int) (float64, error) {
	if c, ok := coeffCache[k]; ok {
		return c, nil
	}
	binom, err := mathx.BinomialReal(-1.5, k-1)
	if err != nil {
		return 0, err
	}
	z, err := mathx.Zeta(float64(k) + 0.5)
	if err != nil {
		return 0, err
	}
	l, err := mathx.DirichletBeta(float64(k) + 0.5)
	if err != nil {
		return 0, err
	}
	c := 4 * binom * math.Pow(2*math.Pi, -2*float64(k)) * z * l
	coeffCache[k] = c
	return c, nil
}

// Phi returns the §5 estimate of Pr[x|x] for a mechanism with budget eps on
// a grid whose cells have side length cellSide: Phi = 1/T(eps*cellSide).
func Phi(eps, cellSide float64) (float64, error) {
	if !(eps > 0) || !(cellSide > 0) {
		return 0, fmt.Errorf("budget: Phi requires positive eps and cellSide, got %g, %g", eps, cellSide)
	}
	t, err := LatticeSum(eps * cellSide)
	if err != nil {
		return 0, err
	}
	return 1 / t, nil
}

// MinEpsilon solves Problem 1: the minimal eps such that Phi(eps, cellSide)
// >= rho, for rho in (0, 1). T(s) is strictly decreasing in s, so the
// paper's branch-and-bound reduces to bisection on the monotone scalar
// equation 1/T(s) = rho.
func MinEpsilon(cellSide, rho float64) (float64, error) {
	if !(cellSide > 0) {
		return 0, fmt.Errorf("budget: cellSide=%g must be positive", cellSide)
	}
	if !(rho > 0 && rho < 1) {
		return 0, fmt.Errorf("budget: rho=%g must be in (0,1)", rho)
	}
	target := 1 / rho // want T(s) <= target
	// Bracket: grow hi until T(hi) <= target.
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		t, err := LatticeSum(hi)
		if err != nil {
			return 0, err
		}
		if t <= target {
			break
		}
		lo = hi
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		t, err := LatticeSum(mid)
		if err != nil {
			return 0, err
		}
		if t <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi / cellSide, nil
}

// Allocation is the output of the budget-allocation procedure: the index
// height and the per-level budgets (Eps[i] is the budget of level i+1).
type Allocation struct {
	// Eps holds the per-level budgets, top level first; len(Eps) is the
	// index height h.
	Eps []float64
	// Rho is the per-level same-cell probability target used.
	Rho float64
}

// Height returns the index height h = |B|.
func (a Allocation) Height() int { return len(a.Eps) }

// Total returns the summed budget, which equals the input budget by the
// composability argument of §2.2.
func (a Allocation) Total() float64 {
	t := 0.0
	for _, e := range a.Eps {
		t += e
	}
	return t
}

// Allocate runs Algorithm 2 (getGridParameters): starting at the top level,
// each level is assigned the minimal budget that keeps Pr[x|x] >= rho on its
// g x g subgrid (whose cell side is L/g^i at level i); the procedure stops —
// assigning all remaining budget to the final level — when the remaining
// budget no longer covers the next level's requirement or maxHeight is
// reached. Because the required budget grows by a factor g per level, the
// height adapts automatically to the total budget: bigger eps buys a deeper
// (finer) index.
func Allocate(eps, sideL float64, g int, rho float64, maxHeight int) (Allocation, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return Allocation{}, fmt.Errorf("budget: eps=%g must be positive and finite", eps)
	}
	if !(sideL > 0) {
		return Allocation{}, fmt.Errorf("budget: domain side %g must be positive", sideL)
	}
	if g < 2 {
		return Allocation{}, fmt.Errorf("budget: granularity %d must be >= 2", g)
	}
	if !(rho > 0 && rho < 1) {
		return Allocation{}, fmt.Errorf("budget: rho=%g must be in (0,1)", rho)
	}
	if maxHeight < 1 {
		return Allocation{}, fmt.Errorf("budget: maxHeight=%d must be >= 1", maxHeight)
	}
	alloc := Allocation{Rho: rho}
	remaining := eps
	cellSide := sideL
	for i := 1; ; i++ {
		cellSide /= float64(g)
		need, err := MinEpsilon(cellSide, rho)
		if err != nil {
			return Allocation{}, err
		}
		if need >= remaining || i == maxHeight {
			// Final level absorbs everything left; extra budget beyond the
			// requirement only improves utility.
			alloc.Eps = append(alloc.Eps, remaining)
			return alloc, nil
		}
		alloc.Eps = append(alloc.Eps, need)
		remaining -= need
	}
}

// AllocateFixedHeight distributes eps over exactly h levels (used to
// reproduce the paper's Table 2, which pins MSM to two levels for a
// like-for-like effective granularity against OPT). Inner levels receive
// their Problem-1 minimum and the leaf absorbs the remainder when the budget
// suffices; otherwise every level's requirement is scaled proportionally so
// the total still equals eps.
func AllocateFixedHeight(eps, sideL float64, g int, rho float64, h int) (Allocation, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return Allocation{}, fmt.Errorf("budget: eps=%g must be positive and finite", eps)
	}
	if !(sideL > 0) {
		return Allocation{}, fmt.Errorf("budget: domain side %g must be positive", sideL)
	}
	if g < 2 {
		return Allocation{}, fmt.Errorf("budget: granularity %d must be >= 2", g)
	}
	if !(rho > 0 && rho < 1) {
		return Allocation{}, fmt.Errorf("budget: rho=%g must be in (0,1)", rho)
	}
	if h < 1 {
		return Allocation{}, fmt.Errorf("budget: height %d must be >= 1", h)
	}
	needs := make([]float64, h)
	cellSide := sideL
	totalNeed, innerNeed := 0.0, 0.0
	for i := 0; i < h; i++ {
		cellSide /= float64(g)
		need, err := MinEpsilon(cellSide, rho)
		if err != nil {
			return Allocation{}, err
		}
		needs[i] = need
		totalNeed += need
		if i < h-1 {
			innerNeed += need
		}
	}
	alloc := Allocation{Rho: rho, Eps: make([]float64, h)}
	if innerNeed < eps {
		copy(alloc.Eps, needs[:h-1])
		alloc.Eps[h-1] = eps - innerNeed
		return alloc, nil
	}
	scale := eps / totalNeed
	for i, n := range needs {
		alloc.Eps[i] = n * scale
	}
	return alloc, nil
}
