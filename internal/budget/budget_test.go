package budget

import (
	"math"
	"testing"
	"testing/quick"
)

// TestLatticeSumSeriesVsDirect cross-checks the Eq. (8) series against brute
// force direct summation in the overlap region. This is the key numerical
// validation of the paper's expansion (and of our zeta / Dirichlet-L
// implementations at half-integer arguments).
func TestLatticeSumSeriesVsDirect(t *testing.T) {
	for _, s := range []float64{0.05, 0.1, 0.2, 0.3, 0.49, 0.8, 1.2, 2.0} {
		direct := latticeSumDirect(s)
		series, err := latticeSumSeries(s)
		if err != nil {
			t.Fatalf("s=%g: %v", s, err)
		}
		if rel := math.Abs(direct-series) / direct; rel > 1e-10 {
			t.Errorf("s=%g: direct %.15g vs series %.15g (rel %g)", s, direct, series, rel)
		}
	}
}

func TestLatticeSumDomain(t *testing.T) {
	for _, s := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := LatticeSum(s); err == nil {
			t.Errorf("s=%g should error", s)
		}
	}
	if _, err := latticeSumSeries(7); err == nil {
		t.Error("series beyond 2*pi should error")
	}
}

func TestLatticeSumLimits(t *testing.T) {
	// As s -> infinity only the origin survives: T -> 1.
	big, err := LatticeSum(60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big-1) > 1e-12 {
		t.Errorf("T(60)=%g want ~1", big)
	}
	// As s -> 0, T ~ 2*pi/s^2.
	small, err := LatticeSum(0.01)
	if err != nil {
		t.Fatal(err)
	}
	lead := 2 * math.Pi / (0.01 * 0.01)
	if math.Abs(small-lead)/lead > 0.01 {
		t.Errorf("T(0.01)=%g want ~%g", small, lead)
	}
	// One-term sanity check at moderate s: T(3) = 1 + 4e^-3 + ... known to
	// be slightly above 1 + 4e^-3.
	mid, _ := LatticeSum(3)
	if mid < 1+4*math.Exp(-3) || mid > 1.3 {
		t.Errorf("T(3)=%g outside sanity range", mid)
	}
}

func TestLatticeSumMonotone(t *testing.T) {
	prev := math.Inf(1)
	for s := 0.05; s < 8; s += 0.05 {
		cur, err := LatticeSum(s)
		if err != nil {
			t.Fatal(err)
		}
		if cur >= prev {
			t.Fatalf("T not strictly decreasing at s=%g: %g >= %g", s, cur, prev)
		}
		prev = cur
	}
}

func TestPhiRange(t *testing.T) {
	f := func(rawEps, rawSide float64) bool {
		eps := 0.01 + math.Abs(math.Mod(rawEps, 3))
		side := 0.1 + math.Abs(math.Mod(rawSide, 30))
		phi, err := Phi(eps, side)
		if err != nil {
			return false
		}
		// Phi is strictly below 1 mathematically, but rounds to 1.0 in
		// float64 once the off-origin mass drops below 1 ulp.
		return phi > 0 && phi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := Phi(0, 1); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := Phi(1, 0); err == nil {
		t.Error("cellSide=0 should error")
	}
}

func TestMinEpsilonSolvesProblem1(t *testing.T) {
	for _, rho := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		for _, side := range []float64{0.5, 2.5, 10} {
			eps, err := MinEpsilon(side, rho)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := Phi(eps, side)
			if err != nil {
				t.Fatal(err)
			}
			if phi < rho-1e-9 {
				t.Errorf("rho=%g side=%g: Phi(MinEps)=%g < rho", rho, side, phi)
			}
			// Minimality: 1% less budget must fall below rho.
			phiLess, err := Phi(eps*0.99, side)
			if err != nil {
				t.Fatal(err)
			}
			if phiLess >= rho {
				t.Errorf("rho=%g side=%g: eps not minimal (Phi at 0.99*eps = %g)", rho, side, phiLess)
			}
		}
	}
}

// TestMinEpsilonScaling: the product eps*side is invariant, so halving the
// cell side doubles the required budget. This is why deeper (finer) index
// levels need geometrically more budget.
func TestMinEpsilonScaling(t *testing.T) {
	e1, err := MinEpsilon(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := MinEpsilon(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-2*e1) > 1e-6*e2 {
		t.Errorf("scaling violated: MinEps(2)=%g, 2*MinEps(4)=%g", e2, 2*e1)
	}
}

func TestMinEpsilonMonotoneInRho(t *testing.T) {
	prev := 0.0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		e, err := MinEpsilon(5, rho)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Fatalf("MinEpsilon not increasing at rho=%g: %g <= %g", rho, e, prev)
		}
		prev = e
	}
}

func TestMinEpsilonValidation(t *testing.T) {
	if _, err := MinEpsilon(0, 0.5); err == nil {
		t.Error("cellSide=0 should error")
	}
	for _, rho := range []float64{0, 1, -0.5, 1.5} {
		if _, err := MinEpsilon(1, rho); err == nil {
			t.Errorf("rho=%g should error", rho)
		}
	}
}

func TestAllocateBudgetConservation(t *testing.T) {
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, g := range []int{2, 3, 4, 5, 6} {
			a, err := Allocate(eps, 20, g, 0.8, 8)
			if err != nil {
				t.Fatalf("eps=%g g=%d: %v", eps, g, err)
			}
			if a.Height() < 1 {
				t.Fatalf("eps=%g g=%d: empty allocation", eps, g)
			}
			if math.Abs(a.Total()-eps) > 1e-12 {
				t.Errorf("eps=%g g=%d: total %g != eps", eps, g, a.Total())
			}
			for i, e := range a.Eps {
				if e <= 0 {
					t.Errorf("eps=%g g=%d: level %d budget %g", eps, g, i, e)
				}
			}
		}
	}
}

// TestAllocateMeetsRhoAtInnerLevels: every level except the last gets
// exactly the minimal budget for its cell size, so Phi = rho there; the last
// level absorbs the remainder.
func TestAllocateMeetsRhoAtInnerLevels(t *testing.T) {
	a, err := Allocate(0.9, 20, 3, 0.7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Height() < 2 {
		t.Skipf("allocation too shallow (h=%d) to test inner levels", a.Height())
	}
	side := 20.0
	for i := 0; i < a.Height()-1; i++ {
		side /= 3
		phi, err := Phi(a.Eps[i], side)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(phi-0.7) > 1e-6 {
			t.Errorf("level %d: Phi=%g want 0.7", i+1, phi)
		}
	}
}

// TestAllocateGeometricNeed: inner-level budgets grow by a factor g.
func TestAllocateGeometricNeed(t *testing.T) {
	a, err := Allocate(2.0, 20, 2, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+2 < a.Height(); i++ {
		ratio := a.Eps[i+1] / a.Eps[i]
		if math.Abs(ratio-2) > 1e-6 {
			t.Errorf("levels %d->%d budget ratio %g want 2", i+1, i+2, ratio)
		}
	}
}

// TestAllocateHeightGrowsWithBudget: more total budget affords more levels.
func TestAllocateHeightGrowsWithBudget(t *testing.T) {
	prev := 0
	for _, eps := range []float64{0.05, 0.2, 1.0, 5.0, 25.0} {
		a, err := Allocate(eps, 20, 4, 0.8, 20)
		if err != nil {
			t.Fatal(err)
		}
		if a.Height() < prev {
			t.Fatalf("height decreased: eps=%g h=%d prev=%d", eps, a.Height(), prev)
		}
		prev = a.Height()
	}
	if prev < 2 {
		t.Error("expected multi-level allocation at eps=25")
	}
}

func TestAllocateMaxHeightCap(t *testing.T) {
	a, err := Allocate(1000, 20, 2, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Height() != 3 {
		t.Errorf("height=%d want cap 3", a.Height())
	}
	if math.Abs(a.Total()-1000) > 1e-9 {
		t.Errorf("total=%g want 1000", a.Total())
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(0, 20, 2, 0.5, 5); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := Allocate(1, 0, 2, 0.5, 5); err == nil {
		t.Error("side=0 should error")
	}
	if _, err := Allocate(1, 20, 1, 0.5, 5); err == nil {
		t.Error("g=1 should error")
	}
	if _, err := Allocate(1, 20, 2, 1.5, 5); err == nil {
		t.Error("rho out of range should error")
	}
	if _, err := Allocate(1, 20, 2, 0.5, 0); err == nil {
		t.Error("maxHeight=0 should error")
	}
}

func TestAllocateFixedHeightExact(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		a, err := AllocateFixedHeight(0.5, 20, 3, 0.8, h)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if a.Height() != h {
			t.Errorf("h=%d: got height %d", h, a.Height())
		}
		if math.Abs(a.Total()-0.5) > 1e-12 {
			t.Errorf("h=%d: total %g", h, a.Total())
		}
		for i, e := range a.Eps {
			if e <= 0 {
				t.Errorf("h=%d level %d: budget %g", h, i, e)
			}
		}
	}
}

// TestAllocateFixedHeightAmpleBudget: with plenty of budget, inner levels get
// exactly their Problem-1 minimum and the leaf absorbs the rest.
func TestAllocateFixedHeightAmpleBudget(t *testing.T) {
	a, err := AllocateFixedHeight(10, 20, 2, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	need1, err := MinEpsilon(10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Eps[0]-need1) > 1e-9 {
		t.Errorf("level 1 budget %g want Problem-1 minimum %g", a.Eps[0], need1)
	}
	if math.Abs(a.Eps[1]-(10-need1)) > 1e-9 {
		t.Errorf("leaf budget %g want remainder %g", a.Eps[1], 10-need1)
	}
}

// TestAllocateFixedHeightScarceBudget: when the budget cannot cover the
// requirements, every level is scaled proportionally.
func TestAllocateFixedHeightScarceBudget(t *testing.T) {
	a, err := AllocateFixedHeight(0.05, 20, 4, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Height() != 3 {
		t.Fatalf("height %d", a.Height())
	}
	if math.Abs(a.Total()-0.05) > 1e-12 {
		t.Errorf("total %g", a.Total())
	}
	// Proportional scaling preserves the geometric ratio g between levels.
	for i := 0; i+1 < 3; i++ {
		ratio := a.Eps[i+1] / a.Eps[i]
		if math.Abs(ratio-4) > 1e-6 {
			t.Errorf("levels %d->%d ratio %g want 4", i+1, i+2, ratio)
		}
	}
}

func TestAllocateFixedHeightValidation(t *testing.T) {
	if _, err := AllocateFixedHeight(0, 20, 2, 0.5, 2); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := AllocateFixedHeight(1, 0, 2, 0.5, 2); err == nil {
		t.Error("side=0 should error")
	}
	if _, err := AllocateFixedHeight(1, 20, 1, 0.5, 2); err == nil {
		t.Error("g=1 should error")
	}
	if _, err := AllocateFixedHeight(1, 20, 2, 0, 2); err == nil {
		t.Error("rho=0 should error")
	}
	if _, err := AllocateFixedHeight(1, 20, 2, 0.5, 0); err == nil {
		t.Error("h=0 should error")
	}
}
