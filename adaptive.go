package geoind

import (
	"context"
	"fmt"
	"time"

	"geoind/internal/adaptive"
	"geoind/internal/channel"
	"geoind/internal/opt"
)

// AdaptiveMSMConfig configures NewAdaptiveMSM, the prior-adaptive variant of
// the multi-step mechanism (the paper's §8 future-work direction). Instead
// of a uniform grid, the index is a k-d-style tree whose nodes split into
// Fanout x Fanout cells of roughly equal prior mass, so reporting
// granularity is fine exactly where users actually are.
type AdaptiveMSMConfig struct {
	// Eps is the total privacy budget (required, > 0).
	Eps float64
	// Region is the square planar domain.
	Region Rect
	// Fanout is the slices per axis at each node (children = Fanout^2).
	Fanout int
	// Height caps the tree depth; paths end early when the budget runs
	// out. 0 means 3.
	Height int
	// Rho is the per-step same-cell probability target; 0 means 0.8.
	Rho float64
	// Metric is the utility metric dQ.
	Metric Metric
	// PriorPoints drives both the adversarial prior and the partition
	// geometry. Empty degenerates to an equal-area partition.
	PriorPoints []Point
	// PriorGranularity is the resolution of the fine prior grid supplying
	// split coordinates; 0 means 128.
	PriorGranularity int
	// Seed fixes the sampling randomness.
	Seed uint64
	// Workers bounds the parallelism of the channel pipeline (LP block
	// solves, Precompute fan-out, lock-free per-query sampling streams when
	// greater than one). 0 or 1 is fully sequential; negative means one
	// worker per CPU.
	Workers int
	// CacheDir, when non-empty, persists solved node channels as checksummed
	// snapshot files under this directory and reloads verified snapshots
	// instead of re-solving (see MSMConfig.CacheDir).
	CacheDir string
	// CacheBytes bounds resident channel-matrix bytes with LRU eviction;
	// 0 means unbounded (see MSMConfig.CacheBytes).
	CacheBytes int64
	// SolveTimeout bounds the wall-clock time of each detached node-channel
	// solve; 0 means no timeout (see MSMConfig.SolveTimeout).
	SolveTimeout time.Duration
	// MaxSolves, when > 0, bounds concurrently executing cold node-channel
	// solves with a same-size admission queue; overflow is shed with a
	// wrapped ErrSolveOverload (see MSMConfig.MaxSolves).
	MaxSolves int
	// Sampler selects the warm-path sampling implementation: "" or "cum"
	// or "alias" (see MSMConfig.Sampler).
	Sampler string
	// PruneMass, when > 0, compacts solved node channels with the
	// eps-preserving, verifier-gated pruning (see MSMConfig.PruneMass).
	PruneMass float64
}

// AdaptiveMSM is the adaptive-index multi-step mechanism.
type AdaptiveMSM struct {
	m *adaptive.Mechanism
}

// NewAdaptiveMSM builds the adaptive mechanism.
func NewAdaptiveMSM(cfg AdaptiveMSMConfig) (*AdaptiveMSM, error) {
	kind, err := opt.ParseSamplerKind(cfg.Sampler)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	store, _, err := newChannelStore(MSMConfig{
		CacheDir:     cfg.CacheDir,
		CacheBytes:   cfg.CacheBytes,
		SolveTimeout: cfg.SolveTimeout,
		MaxSolves:    cfg.MaxSolves,
	})
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	m, err := adaptive.New(adaptive.Config{
		Eps:              cfg.Eps,
		Region:           cfg.Region,
		Fanout:           cfg.Fanout,
		Height:           cfg.Height,
		Rho:              cfg.Rho,
		Metric:           cfg.Metric,
		PriorPoints:      cfg.PriorPoints,
		PriorGranularity: cfg.PriorGranularity,
		Workers:          cfg.Workers,
		Store:            store,
		Sampler:          kind,
		PruneMass:        cfg.PruneMass,
	}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	return &AdaptiveMSM{m: m}, nil
}

// Report implements Mechanism.
func (a *AdaptiveMSM) Report(x Point) (Point, error) { return a.m.Report(x) }

// ReportCtx implements MechanismCtx: canceling ctx aborts an in-flight cold
// report promptly (abandoning shared node solves, not killing them while
// other waiters remain).
func (a *AdaptiveMSM) ReportCtx(ctx context.Context, x Point) (Point, error) {
	return a.m.ReportCtx(ctx, x)
}

// ReportBatch implements BatchMechanism: the batch acquires the sampling
// stream once and, with Workers > 1, fans the tree descents across the
// worker pool. Results come back in input order, identical to a sequential
// Report loop for the same seed and arrival order at any worker count.
func (a *AdaptiveMSM) ReportBatch(points []Point) ([]Point, error) {
	return a.m.ReportBatch(points)
}

// ReportBatchCtx implements BatchMechanismCtx: a cancel drains the pooled
// fan-out promptly and returns ctx.Err().
func (a *AdaptiveMSM) ReportBatchCtx(ctx context.Context, points []Point) ([]Point, error) {
	return a.m.ReportBatchCtx(ctx, points)
}

// Epsilon implements Mechanism.
func (a *AdaptiveMSM) Epsilon() float64 { return a.m.Epsilon() }

// Name implements Mechanism.
func (a *AdaptiveMSM) Name() string { return "MSM-adaptive" }

// Precompute eagerly solves every node channel.
func (a *AdaptiveMSM) Precompute() error { return a.m.Precompute() }

// PrecomputeCtx is Precompute under a context: canceling ctx stops issuing
// new solves and returns ctx.Err(); solved channels stay cached.
func (a *AdaptiveMSM) PrecomputeCtx(ctx context.Context) error { return a.m.PrecomputeCtx(ctx) }

// MeanLeafSide returns the prior-weighted mean leaf cell side (km), a
// measure of the effective reporting granularity where users actually are.
func (a *AdaptiveMSM) MeanLeafSide() float64 { return a.m.MeanLeafSide() }

// NumNodes returns the partition-tree size.
func (a *AdaptiveMSM) NumNodes() int { return a.m.Tree().NumNodes() }

// StoreStats returns the full channel-store counter snapshot, including
// snapshot-persistence activity (disk hits and write-behind writes).
func (a *AdaptiveMSM) StoreStats() channel.Stats { return a.m.StoreStats() }

// DirCacheStats returns the persistent snapshot cache's own counters — loads,
// hits, decode errors, and version misses (intact files written by a foreign
// snapshot format version). ok is false when no cache directory is
// configured.
func (a *AdaptiveMSM) DirCacheStats() (channel.DirStats, bool) { return a.m.DirCacheStats() }

// SamplerInfo reports the warm-path sampling configuration (sampler kind,
// configured prune mass) and the pruning counters: solved node channels
// compacted, and dense fallbacks after a failed post-prune verification.
func (a *AdaptiveMSM) SamplerInfo() (kind string, pruneMass float64, pruned, fallbacks int64) {
	return a.m.SamplerInfo()
}

// FlushCache blocks until every solved channel handed to the persistent
// snapshot cache (AdaptiveMSMConfig.CacheDir) has been written to disk; a
// no-op without a cache directory.
func (a *AdaptiveMSM) FlushCache() { a.m.SyncStore() }

var (
	_ Mechanism         = (*AdaptiveMSM)(nil)
	_ BatchMechanism    = (*AdaptiveMSM)(nil)
	_ MechanismCtx      = (*AdaptiveMSM)(nil)
	_ BatchMechanismCtx = (*AdaptiveMSM)(nil)
)
