package geoind_test

import (
	"fmt"
	"time"

	"geoind"
)

// ExampleNewMSM shows the full setup of the paper's multi-step mechanism:
// the budget allocator decides the index height and per-level budgets from
// eps, the fanout and rho.
func ExampleNewMSM() {
	ds := geoind.YelpSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps:         0.9,
		Region:      ds.Region(),
		Granularity: 3,
		Rho:         0.8,
		PriorPoints: ds.Points(),
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("height:", m.Height())
	fmt.Printf("leaf grid: %dx%d\n", m.LeafGranularity(), m.LeafGranularity())
	split := m.BudgetSplit()
	fmt.Printf("level-1 budget: %.3f of %.1f\n", split[0], m.Epsilon())
	// Output:
	// height: 2
	// leaf grid: 9x9
	// level-1 budget: 0.464 of 0.9
}

// ExampleNewPlanarLaplace demonstrates the prior-agnostic baseline; its
// expected noise radius is 2/eps kilometres.
func ExampleNewPlanarLaplace() {
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 7})
	if err != nil {
		panic(err)
	}
	z, err := pl.Report(geoind.Point{X: 10, Y: 10})
	if err != nil {
		panic(err)
	}
	fmt.Println("mechanism:", pl.Name())
	fmt.Println("perturbed:", z != geoind.Point{X: 10, Y: 10})
	// Output:
	// mechanism: PL
	// perturbed: true
}

// ExampleNewBudgeted shows per-user budget accounting: two reports fit in
// the daily budget, the third is refused.
func ExampleNewBudgeted() {
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.25, Seed: 3})
	if err != nil {
		panic(err)
	}
	b, err := geoind.NewBudgeted(pl, 0.5, 24*time.Hour)
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 3; i++ {
		_, err := b.Report("alice", geoind.Point{X: 5, Y: 5})
		fmt.Printf("report %d ok: %v\n", i, err == nil)
	}
	// Output:
	// report 1 ok: true
	// report 2 ok: true
	// report 3 ok: false
}

// ExampleEvaluateUtility measures mean utility loss of a mechanism over a
// check-in workload, the paper's evaluation methodology in three lines.
func ExampleEvaluateUtility() {
	ds := geoind.YelpSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.5, Region: ds.Region(), Granularity: 4,
		PriorPoints: ds.Points(), Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	st, err := geoind.EvaluateUtility(m, ds.SampleRequests(500, 2), geoind.Euclidean)
	if err != nil {
		panic(err)
	}
	fmt.Println("requests:", st.N)
	fmt.Println("loss under 5 km:", st.Mean < 5)
	// Output:
	// requests: 500
	// loss under 5 km: true
}
