package geoind_test

// Parallel-pipeline benchmarks: warm-path sampling throughput under
// concurrent load (lock-free per-query RNG streams vs the historical shared
// mutex-guarded RNG) and the interior-point solve at increasing granularity
// with 1, 4 and all-CPU block workers. On a multi-core machine the
// Workers=all variants should scale with cores; the solver output is
// bit-identical for every worker count, so these only trade wall time.

import (
	"fmt"
	"testing"

	"geoind"
)

// warmMSM builds and precomputes an MSM over the synthetic Gowalla prior.
func warmMSM(b *testing.B, workers int) *geoind.MSM {
	b.Helper()
	ds := geoind.GowallaSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.5, Region: ds.Region(), Granularity: 4,
		PriorPoints: ds.Points(), Seed: 1, Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMSMReportParallel measures warm sampling throughput with
// b.RunParallel. "sequential" keeps the Workers<=1 shared-RNG mode, so
// every goroutine contends on one mutex; "streams" uses the lock-free
// per-query PCG streams (Workers=all).
func BenchmarkMSMReportParallel(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	reqs := ds.SampleRequests(4096, 1)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"streams", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := warmMSM(b, mode.workers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := m.Report(reqs[i%len(reqs)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAdaptiveReportParallel is the adaptive-index counterpart of the
// warm sampling benchmark (lock-free streams, all workers).
func BenchmarkAdaptiveReportParallel(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	reqs := ds.SampleRequests(4096, 1)
	m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
		Eps: 0.5, Region: ds.Region(), Fanout: 3,
		PriorPoints: ds.Points(), Seed: 1, Workers: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := m.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkIPMWorkers measures the OPT solve (dominated by the per-column
// Cholesky block factorizations of the interior-point method) at g in
// {4, 6, 8} with 1, 4 and all-CPU workers.
func BenchmarkIPMWorkers(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	for _, g := range []int{4, 6, 8} {
		for _, w := range []struct {
			name    string
			workers int
		}{
			{"w=1", 1},
			{"w=4", 4},
			{"w=all", -1},
		} {
			b.Run(fmt.Sprintf("g=%d/%s", g, w.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := geoind.NewOptimal(geoind.OptimalConfig{
						Eps: 0.5, Region: ds.Region(), Granularity: g,
						PriorPoints: ds.Points(), Seed: 1, Workers: w.workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
