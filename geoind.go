package geoind

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"geoind/internal/channel"
	"geoind/internal/core"
	"geoind/internal/fabric"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/laplace"
	"geoind/internal/lp"
	"geoind/internal/metrics"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// Point is a location in planar kilometre coordinates.
type Point = geo.Point

// Rect is an axis-aligned rectangle in planar kilometre coordinates.
type Rect = geo.Rect

// LatLon is a geodetic coordinate in degrees.
type LatLon = geo.LatLon

// Metric identifies a utility-loss metric (Euclidean or SquaredEuclidean).
type Metric = geo.Metric

// Utility metrics (see §2.2 of the paper).
const (
	Euclidean        = geo.Euclidean
	SquaredEuclidean = geo.SquaredEuclidean
)

// Square returns the square region [0, side) x [0, side).
func Square(side float64) Rect { return geo.NewSquare(side) }

// ErrSolveOverload is returned (wrapped) by Report/ReportCtx when
// MSMConfig.MaxSolves (or AdaptiveMSMConfig.MaxSolves) is set and both the
// solve slots and the admission queue are full: the cold report was shed
// immediately instead of queueing unboundedly. The caller should retry after
// a short backoff; warm reports are never shed. Test with errors.Is.
var ErrSolveOverload = channel.ErrSolveOverload

// ProjectRegion builds a planar region from a geodetic bounding box using an
// equirectangular projection; use its Project/Unproject to convert check-in
// coordinates.
func ProjectRegion(minLat, minLon, maxLat, maxLon float64) (*geo.Region, error) {
	return geo.NewRegion(minLat, minLon, maxLat, maxLon)
}

// Mechanism is a location-sanitization mechanism satisfying eps-GeoInd.
type Mechanism interface {
	// Report returns a privacy-preserving version of the true location x.
	Report(x Point) (Point, error)
	// Epsilon returns the total privacy budget the mechanism consumes per
	// report.
	Epsilon() float64
	// Name returns a short identifier for experiment output.
	Name() string
}

// BatchMechanism is a Mechanism with a pooled batch path: ReportBatch
// sanitizes a slice of locations in one call, amortizing per-report overhead
// (lock acquisitions, RNG stream setup) and — for the hierarchical mechanisms
// with Workers > 1 — fanning the points across the worker pool. Results are
// always returned in input order, deterministically for any worker count:
// at Workers <= 1 the output is bit-identical to calling Report in a loop,
// and at Workers > 1 it matches a sequential Report loop in the same arrival
// order. Every mechanism in this package implements BatchMechanism.
type BatchMechanism interface {
	Mechanism
	// ReportBatch returns privacy-preserving versions of all points, in
	// input order. The privacy cost is len(points) * Epsilon().
	ReportBatch(points []Point) ([]Point, error)
}

// MechanismCtx is a Mechanism whose reports observe a context: canceling ctx
// (client disconnect, deadline) makes an in-flight report return promptly
// with ctx.Err() instead of blocking on a cold channel solve. Every
// mechanism in this package implements MechanismCtx; the plain Report
// methods remain as context.Background() wrappers.
type MechanismCtx interface {
	Mechanism
	// ReportCtx is Report under ctx. With a background context the output is
	// bit-identical to Report.
	ReportCtx(ctx context.Context, x Point) (Point, error)
}

// BatchMechanismCtx is a BatchMechanism whose batch path observes a context:
// a cancel drains the pooled fan-out promptly and the call returns ctx.Err().
type BatchMechanismCtx interface {
	BatchMechanism
	// ReportBatchCtx is ReportBatch under ctx.
	ReportBatchCtx(ctx context.Context, points []Point) ([]Point, error)
}

// ReportBatch sanitizes a slice of points with any Mechanism: mechanisms
// implementing BatchMechanism use their pooled batch path, everything else
// falls back to a sequential Report loop. The privacy cost is
// len(points) * m.Epsilon() either way.
func ReportBatch(m Mechanism, points []Point) ([]Point, error) {
	if bm, ok := m.(BatchMechanism); ok {
		return bm.ReportBatch(points)
	}
	out := make([]Point, len(points))
	for i, x := range points {
		z, err := m.Report(x)
		if err != nil {
			return nil, err
		}
		out[i] = z
	}
	return out, nil
}

// ReportBatchCtx is ReportBatch under a context: it uses the mechanism's
// ctx-aware batch path when available, falling back to per-point ReportCtx
// or, last, a plain Report loop with a ctx poll between points.
func ReportBatchCtx(ctx context.Context, m Mechanism, points []Point) ([]Point, error) {
	if bm, ok := m.(BatchMechanismCtx); ok {
		return bm.ReportBatchCtx(ctx, points)
	}
	mc, hasCtx := m.(MechanismCtx)
	out := make([]Point, len(points))
	for i, x := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			z   Point
			err error
		)
		if hasCtx {
			z, err = mc.ReportCtx(ctx, x)
		} else {
			z, err = m.Report(x)
		}
		if err != nil {
			return nil, err
		}
		out[i] = z
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Planar Laplace

// LaplaceConfig configures NewPlanarLaplace.
type LaplaceConfig struct {
	// Eps is the privacy budget (required, > 0; units 1/km).
	Eps float64
	// Seed fixes the sampling randomness.
	Seed uint64
	// Remap, if true, projects outputs to the nearest cell center of a
	// Granularity x Granularity grid over Region — the post-processing step
	// used for the PL benchmark in the paper's evaluation.
	Remap       bool
	Region      Rect
	Granularity int
}

// PlanarLaplace is the planar Laplace mechanism (optionally grid-remapped).
type PlanarLaplace struct {
	mech *laplace.Mechanism
	grid *grid.Grid // nil when not remapping
	mu   sync.Mutex
}

// NewPlanarLaplace builds a planar Laplace mechanism.
func NewPlanarLaplace(cfg LaplaceConfig) (*PlanarLaplace, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9d2c5680))
	m, err := laplace.New(cfg.Eps, rng)
	if err != nil {
		return nil, err
	}
	pl := &PlanarLaplace{mech: m}
	if cfg.Remap {
		g, err := grid.New(cfg.Region, cfg.Granularity)
		if err != nil {
			return nil, fmt.Errorf("geoind: remap grid: %w", err)
		}
		pl.grid = g
	}
	return pl, nil
}

// Report implements Mechanism.
func (p *PlanarLaplace) Report(x Point) (Point, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.grid != nil {
		return p.mech.SampleRemapped(x, p.grid), nil
	}
	return p.mech.Sample(x), nil
}

// ReportCtx implements MechanismCtx. Sampling is a handful of float
// operations, so the only ctx observance needed is an upfront poll.
func (p *PlanarLaplace) ReportCtx(ctx context.Context, x Point) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, err
	}
	return p.Report(x)
}

// ReportBatch implements BatchMechanism: the RNG mutex is acquired once for
// the whole batch and the points are sampled sequentially, so the output is
// bit-identical to a Report loop.
func (p *PlanarLaplace) ReportBatch(points []Point) ([]Point, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mech.SampleBatch(points, p.grid), nil
}

// ReportBatchCtx implements BatchMechanismCtx with an upfront ctx poll; the
// batch itself is pure in-memory sampling and never blocks.
func (p *PlanarLaplace) ReportBatchCtx(ctx context.Context, points []Point) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.ReportBatch(points)
}

// Epsilon implements Mechanism.
func (p *PlanarLaplace) Epsilon() float64 { return p.mech.Epsilon() }

// Name implements Mechanism.
func (p *PlanarLaplace) Name() string {
	if p.grid != nil {
		return "PL+remap"
	}
	return "PL"
}

// ---------------------------------------------------------------------------
// Optimal mechanism (OPT)

// OptimalConfig configures NewOptimal.
type OptimalConfig struct {
	// Eps is the privacy budget (required, > 0).
	Eps float64
	// Region is the square planar domain.
	Region Rect
	// Granularity g discretizes the region into g x g candidate cells.
	// Beware: LP cost grows steeply (the paper could not finish g=16 within
	// 72 hours with a commercial solver; this implementation handles it in
	// minutes, but g is still practically bounded).
	Granularity int
	// Metric is the utility metric dQ to optimize (default Euclidean).
	Metric Metric
	// PriorPoints builds the adversarial prior from check-ins; empty means
	// uniform.
	PriorPoints []Point
	// Seed fixes the sampling randomness.
	Seed uint64
	// Workers bounds the parallelism of the LP solve's per-column block
	// factorizations. 0 or 1 solves serially; negative uses one worker per
	// CPU. The solution is bit-identical for every worker count.
	Workers int
	// Sampler selects the warm-path sampling implementation: "" or "cum"
	// (cumulative binary search, bit-identical to historical output
	// streams) or "alias" (O(1) Walker alias table, built once at
	// construction time).
	Sampler string
	// PruneMass, when > 0, compacts the solved channel by pruning per-row
	// probability mass up to this bound into a uniform background row — an
	// eps-preserving transformation re-verified against the full GeoInd
	// constraint set (construction fails closed: the dense channel is kept
	// if verification rejects the compact one). Must be in
	// [0, opt.MaxPruneMass).
	PruneMass float64
	// LocalRadius, when > 0 (km), solves the LP only over the locally
	// relevant cells — the heaviest-prior cells covering 1 - LocalMassFloor
	// of the mass, dilated by this radius — and pads the excluded tail with
	// the analytic β background (opt.BuildLocal). The channel then
	// satisfies eps-GeoInd restricted to that domain (re-verified at
	// construction); a gate failure falls back to the dense solve, fail
	// closed. 0 keeps the full-domain LP.
	LocalRadius float64
	// LocalMassFloor bounds the prior mass left outside the relevance core;
	// 0 means opt.DefaultLocalMassFloor. Only meaningful with LocalRadius.
	LocalMassFloor float64
}

// optBatchStreamSalt derives the per-point PCG stream sequence numbers of
// Optimal.ReportBatch with Workers > 1 (distinct from the internal/core and
// internal/adaptive salts, so streams never overlap across mechanisms built
// from one seed).
const optBatchStreamSalt = 0x3c6ef372fe94f82b

// Optimal is the optimal GeoInd mechanism over a regular grid.
type Optimal struct {
	ch          *opt.Channel
	sampler     opt.Sampler
	kind        opt.SamplerKind
	pruned      bool
	localRadius float64
	localFloor  float64
	localFB     int64 // 1 when a requested local build fell back to dense
	rng         *rand.Rand
	mu          sync.Mutex
	seed        uint64
	workers     int
	pointID     atomic.Uint64
}

// NewOptimal solves the OPT linear program and returns a sampling-ready
// mechanism.
func NewOptimal(cfg OptimalConfig) (*Optimal, error) {
	kind, err := opt.ParseSamplerKind(cfg.Sampler)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	if cfg.PruneMass != 0 && (!(cfg.PruneMass > 0) || cfg.PruneMass >= opt.MaxPruneMass) {
		return nil, fmt.Errorf("geoind: prune mass %g outside [0, %g)", cfg.PruneMass, opt.MaxPruneMass)
	}
	if cfg.LocalRadius != 0 && (!(cfg.LocalRadius > 0) || math.IsInf(cfg.LocalRadius, 0)) {
		return nil, fmt.Errorf("geoind: local radius %g must be 0 (off) or positive and finite", cfg.LocalRadius)
	}
	if cfg.LocalMassFloor != 0 && cfg.LocalRadius == 0 {
		return nil, fmt.Errorf("geoind: local mass floor set without a local radius")
	}
	g, err := grid.New(cfg.Region, cfg.Granularity)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	var weights []float64
	if len(cfg.PriorPoints) > 0 {
		weights = prior.FromPoints(g, cfg.PriorPoints).Weights()
	} else {
		weights = prior.Uniform(g).Weights()
	}
	var (
		ch      *opt.Channel
		localFB int64
	)
	if cfg.LocalRadius > 0 {
		// Fail closed like pruning: a local build rejected by the restricted
		// GeoInd gate (or an unconverged reduced LP) falls back to the dense
		// solve.
		ch, err = opt.BuildLocal(cfg.Eps, g, weights, cfg.Metric, cfg.LocalRadius, &opt.LocalOptions{
			MassFloor: cfg.LocalMassFloor,
			LP:        &lp.IPMOptions{Workers: cfg.Workers},
			Workers:   cfg.Workers,
		})
		if err != nil {
			ch, localFB = nil, 1
		}
	}
	if ch == nil {
		ch, err = opt.Build(cfg.Eps, g, weights, cfg.Metric, &opt.Options{
			LP: &lp.IPMOptions{Workers: cfg.Workers},
		})
		if err != nil {
			return nil, fmt.Errorf("geoind: %w", err)
		}
	}
	pruned := false
	if cfg.PruneMass > 0 && !ch.IsCompact() {
		// Fail closed: a prune rejected by the GeoInd re-verification keeps
		// the dense channel (pruning is an optimization, never required).
		if compact, perr := ch.Prune(cfg.PruneMass, weights); perr == nil {
			ch = compact
			pruned = true
		}
	}
	localFloor := cfg.LocalMassFloor
	if cfg.LocalRadius > 0 && localFloor == 0 {
		localFloor = opt.DefaultLocalMassFloor
	}
	return &Optimal{
		ch:          ch,
		sampler:     ch.Sampler(kind),
		kind:        kind,
		pruned:      pruned,
		localRadius: cfg.LocalRadius,
		localFloor:  localFloor,
		localFB:     localFB,
		rng:         rand.New(rand.NewPCG(cfg.Seed, 0xb5297a4d)),
		seed:        cfg.Seed,
		workers:     cfg.Workers,
	}, nil
}

// Report implements Mechanism.
func (o *Optimal) Report(x Point) (Point, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ch.SampleVia(o.sampler, x, o.rng), nil
}

// ReportCtx implements MechanismCtx. The channel is solved at construction,
// so reporting is pure sampling; an upfront poll is the only ctx observance
// needed.
func (o *Optimal) ReportCtx(ctx context.Context, x Point) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, err
	}
	return o.Report(x)
}

// ReportBatch implements BatchMechanism. With Workers <= 1 the batch holds
// the RNG mutex once and samples sequentially (bit-identical to a Report
// loop); with Workers > 1 it reserves a contiguous block of point indices
// and fans the samples across the worker pool, each point drawing from the
// PCG stream of its own index, so the output is order-deterministic for any
// worker count.
func (o *Optimal) ReportBatch(points []Point) ([]Point, error) {
	out := make([]Point, len(points))
	if len(points) == 0 {
		return out, nil
	}
	workers := channel.Workers(o.workers)
	if workers <= 1 {
		o.mu.Lock()
		defer o.mu.Unlock()
		for i, x := range points {
			out[i] = o.ch.SampleVia(o.sampler, x, o.rng)
		}
		return out, nil
	}
	base := o.pointID.Add(uint64(len(points))) - uint64(len(points))
	_ = channel.ForEach(workers, len(points), func(i int) error {
		rng := rand.New(rand.NewPCG(o.seed, optBatchStreamSalt^(base+uint64(i))))
		out[i] = o.ch.SampleVia(o.sampler, points[i], rng)
		return nil
	})
	return out, nil
}

// ReportBatchCtx implements BatchMechanismCtx with an upfront ctx poll; the
// batch itself is pure in-memory sampling and never blocks.
func (o *Optimal) ReportBatchCtx(ctx context.Context, points []Point) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return o.ReportBatch(points)
}

// Epsilon implements Mechanism.
func (o *Optimal) Epsilon() float64 { return o.ch.Eps }

// Name implements Mechanism.
func (o *Optimal) Name() string { return "OPT" }

// ExpectedLoss returns the analytic expected utility loss of the channel
// under the construction prior.
func (o *Optimal) ExpectedLoss() float64 { return o.ch.ExpectedLoss }

// Channel returns a copy of the row-major channel matrix K(X)(Z)
// (materialized when the channel is compact).
func (o *Optimal) Channel() []float64 {
	return append([]float64(nil), o.ch.DenseK()...)
}

// VerifyGeoInd exhaustively re-checks the GeoInd constraints on the solved
// channel and returns the maximum log-ratio excess (<= 0 means satisfied).
func (o *Optimal) VerifyGeoInd() float64 {
	return o.ch.VerifyMaxExcess()
}

// SamplerInfo reports the sampling configuration: the sampler kind in use
// and whether the channel was compacted by pruning (pruned is false when
// PruneMass was 0 or the compact form failed re-verification).
func (o *Optimal) SamplerInfo() (kind string, pruned bool) {
	return o.kind.String(), o.pruned
}

// LocalInfo reports the locally relevant OPT configuration: the requested
// radius and mass floor (radius 0 means the variant is off), how many
// channels were solved over a reduced domain (0 or 1 for this flat
// mechanism), and whether the local build fell back to a dense solve.
func (o *Optimal) LocalInfo() (radius, massFloor float64, localChannels, denseFallbacks int64) {
	if o.ch.IsLocal() {
		localChannels = 1
	}
	return o.localRadius, o.localFloor, localChannels, o.localFB
}

// ---------------------------------------------------------------------------
// Multi-Step Mechanism (MSM)

// MSMConfig configures NewMSM.
type MSMConfig struct {
	// Eps is the total privacy budget (required, > 0).
	Eps float64
	// Region is the square planar domain.
	Region Rect
	// Granularity g is the per-level fanout (g x g cells per step).
	Granularity int
	// Rho is the per-level target probability of staying in the same cell;
	// 0 means the paper's default 0.8.
	Rho float64
	// Metric is the utility metric dQ (default Euclidean).
	Metric Metric
	// MaxHeight optionally caps the index height.
	MaxHeight int
	// PriorPoints builds the adversarial prior; empty means uniform.
	PriorPoints []Point
	// Seed fixes the sampling randomness.
	Seed uint64
	// DisableCache turns off channel memoization (for benchmarking the
	// cold path).
	DisableCache bool
	// Workers bounds the parallelism of the channel pipeline: LP block
	// factorizations, Precompute fan-out across the hierarchy, and — when
	// greater than one — lock-free per-query sampling streams so concurrent
	// Reports scale with cores. 0 or 1 keeps the fully sequential historical
	// behaviour (bit-identical outputs for a fixed seed); a negative value
	// uses one worker per CPU. Same seed + same worker count ⇒ identical
	// outputs.
	Workers int
	// CacheDir, when non-empty, persists every solved channel as a
	// checksummed snapshot file under this directory and reloads matching
	// snapshots instead of re-solving — a restarted process (or a fleet of
	// processes sharing the volume) skips the LP solve phase entirely.
	// Snapshots are verified (full key + CRC) before use; any mismatch
	// falls back to solving. Sampling from a loaded channel is bit-identical
	// to sampling from the channel it mirrors.
	CacheDir string
	// CacheBytes bounds the resident bytes of cached channel matrices
	// (K + cumulative rows); least-recently-used channels are evicted when
	// the bound is exceeded. 0 means unbounded. With CacheDir set, evicted
	// channels remain loadable from disk.
	CacheBytes int64
	// SpannerStretch, when > 0 (must then be >= 1), solves each per-level
	// channel with the spanner-reduced constraint set at this stretch factor
	// instead of the full O(n^2) pair families — same eps-GeoInd guarantee,
	// slightly conservative for nearby pairs, much smaller LP. Reduced
	// channels are cached and persisted under a distinct key variant so they
	// never alias exact ones. 0 keeps the exact formulation.
	SpannerStretch float64
	// SolveTimeout bounds the wall-clock time of each channel solve. Solves
	// run detached from any individual request — a waiter abandoning a solve
	// (request canceled) leaves it running for the remaining waiters, and the
	// solve is aborted only when no waiters remain — so this is the only cap
	// on how long a pathological LP can run. 0 means no timeout.
	SolveTimeout time.Duration
	// MaxSolves, when > 0, bounds the number of concurrently executing cold
	// channel solves; up to MaxSolves further solves queue for a slot, and
	// beyond that new cold reports fail fast with a wrapped ErrSolveOverload
	// instead of accumulating goroutines. Warm reports and joins of
	// in-flight solves are never shed. 0 means unbounded (the historical
	// behaviour).
	MaxSolves int
	// Sampler selects the warm-path sampling implementation: "" or "cum"
	// (cumulative binary search, bit-identical to historical output
	// streams) or "alias" (O(1) Walker alias tables, built lazily once per
	// channel and shared across goroutines).
	Sampler string
	// PruneMass, when > 0, compacts every solved channel by pruning
	// per-row probability mass up to this bound into a uniform background
	// row — an eps-preserving transformation re-verified per channel
	// against the full GeoInd constraint set (a failed verification keeps
	// that channel dense). Compact channels shrink both resident cache
	// bytes and persisted snapshots, and are cached under a distinct key
	// variant so they never alias dense ones. Must be in
	// [0, opt.MaxPruneMass).
	PruneMass float64
	// LocalRadius, when > 0 (km), switches every per-level LP to the
	// locally relevant construction: the solve runs only over the
	// relevance set (prior-mass core dilated by this radius) and the
	// excluded tail is padded with the analytic β background. Local
	// channels satisfy eps-GeoInd restricted to their domain (re-verified
	// at construction and again when loaded from CacheDir); failures fall
	// back to the dense solve, counted in LocalInfo. Composes with
	// SpannerStretch; PruneMass is ignored for local channels (already
	// compact). Keyed separately in the store and snapshot cache.
	LocalRadius float64
	// LocalMassFloor bounds the prior mass left outside the relevance
	// core; 0 means opt.DefaultLocalMassFloor. Requires LocalRadius > 0.
	LocalMassFloor float64
	// Fabric, when non-nil, joins this mechanism to a replica fleet: the
	// channel store is backed by the tiered fabric chain (memory → CacheDir
	// snapshots → hedged remote fetches from the key's owner), and
	// Precompute is restricted to the keys this replica owns under the
	// fleet's rendezvous hash, so each unique channel is solved exactly
	// once fleet-wide. Peers must list every replica's base URL
	// (identically on all replicas) and Self must be one of them. The
	// fabric is an optimization only: an unreachable or corrupt peer
	// degrades to a local solve, never a query failure.
	Fabric *FabricConfig
}

// FabricConfig configures the distributed channel fabric (MSMConfig.Fabric).
type FabricConfig struct {
	// Peers is the full replica set as base URLs ("http://host:port"),
	// identical on every replica; Self must be one of them. A single-entry
	// set is a degenerate fleet: this replica owns every key and no remote
	// tier is built.
	Peers []string
	Self  string
	// MemBytes bounds the fabric's in-memory snapshot tier (0 means
	// fabric.DefaultMemBytes, negative disables the tier). This tier sits
	// behind the store's own resident cache (MSMConfig.CacheBytes) and
	// mainly serves /v1/channels peers without touching disk.
	MemBytes int64
	// HedgeDelay is how long a remote fetch waits for the owner before
	// issuing a cached-only hedge to the next ring replica; 0 means the
	// package default, negative disables hedging.
	HedgeDelay time.Duration
	// FetchTimeout bounds one remote fetch attempt including hedges (0 =
	// default).
	FetchTimeout time.Duration
	// FetchRetries is how many extra attempts follow a retryable fetch
	// failure (0 = default; negative means no retries).
	FetchRetries int
	// FetchBackoff is the initial delay between attempts, doubling each
	// retry (0 = default).
	FetchBackoff time.Duration
}

// MSM is the paper's multi-step mechanism.
type MSM struct {
	m   *core.Mechanism
	fab *fabric.Fabric // nil without MSMConfig.Fabric
}

// NewMSM allocates the budget across index levels (§5) and prepares the
// hierarchical mechanism (§4). Channels are solved lazily; call Precompute
// to warm them eagerly.
func NewMSM(cfg MSMConfig) (*MSM, error) {
	kind, err := opt.ParseSamplerKind(cfg.Sampler)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	store, fab, err := newChannelStore(cfg)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	var owns func(channel.Key) bool
	if fab != nil {
		owns = fab.Owns
	}
	m, err := core.New(core.Config{
		Eps:            cfg.Eps,
		G:              cfg.Granularity,
		Region:         cfg.Region,
		Rho:            cfg.Rho,
		Metric:         cfg.Metric,
		MaxHeight:      cfg.MaxHeight,
		PriorPoints:    cfg.PriorPoints,
		DisableCache:   cfg.DisableCache,
		Workers:        cfg.Workers,
		Store:          store,
		SpannerStretch: cfg.SpannerStretch,
		Sampler:        kind,
		PruneMass:      cfg.PruneMass,
		LocalRadius:    cfg.LocalRadius,
		LocalMassFloor: cfg.LocalMassFloor,
		Owns:           owns,
	}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	return &MSM{m: m, fab: fab}, nil
}

// newChannelStore builds the channel store implied by the facade cache,
// solve-lifecycle and fleet settings: nil (each mechanism gets a private
// in-memory store) when everything is zero, otherwise a store with
// snapshot-byte cost accounting, an optional per-solve timeout, optional
// solve admission control, and — with a cache directory or a fabric — a
// read-through/write-behind backing. With cfg.Fabric set the backing is the
// fabric's tiered chain (which owns the snapshot directory); otherwise it is
// the plain DirCache.
func newChannelStore(cfg MSMConfig) (*channel.Store, *fabric.Fabric, error) {
	if cfg.Fabric == nil && cfg.CacheDir == "" && cfg.CacheBytes == 0 &&
		cfg.SolveTimeout == 0 && cfg.MaxSolves == 0 {
		return nil, nil, nil
	}
	opts := channel.Options{
		MaxCost:      cfg.CacheBytes,
		CostFn:       opt.SnapshotCost,
		SolveTimeout: cfg.SolveTimeout,
		MaxSolves:    cfg.MaxSolves,
	}
	var fab *fabric.Fabric
	switch {
	case cfg.Fabric != nil:
		fc := cfg.Fabric
		var err error
		fab, err = fabric.New(fabric.Config{
			Peers:        fc.Peers,
			Self:         fc.Self,
			CacheDir:     cfg.CacheDir,
			Codec:        opt.SnapshotCodec{},
			Cost:         opt.SnapshotCost,
			MemBytes:     fc.MemBytes,
			HedgeDelay:   fc.HedgeDelay,
			FetchTimeout: fc.FetchTimeout,
			FetchRetries: fc.FetchRetries,
			FetchBackoff: fc.FetchBackoff,
		})
		if err != nil {
			return nil, nil, err
		}
		opts.Backing = fab.Backing()
	case cfg.CacheDir != "":
		dc, err := channel.NewDirCache(cfg.CacheDir, opt.SnapshotCodec{})
		if err != nil {
			return nil, nil, err
		}
		opts.Backing = dc
	}
	return channel.New(opts), fab, nil
}

// Report implements Mechanism.
func (m *MSM) Report(x Point) (Point, error) { return m.m.Report(x) }

// ReportCtx implements MechanismCtx: canceling ctx aborts an in-flight cold
// report promptly (abandoning — not killing — any channel solve that still
// has other waiters). Warm reports never block and are unaffected.
func (m *MSM) ReportCtx(ctx context.Context, x Point) (Point, error) {
	return m.m.ReportCtx(ctx, x)
}

// ReportBatch implements BatchMechanism: the batch acquires the sampling
// stream once and, with Workers > 1, fans the descents across the worker
// pool. Results come back in input order, identical to a sequential Report
// loop for the same seed and arrival order at any worker count.
func (m *MSM) ReportBatch(points []Point) ([]Point, error) { return m.m.ReportBatch(points) }

// ReportBatchCtx implements BatchMechanismCtx: a cancel drains the pooled
// fan-out promptly and returns ctx.Err(); uncanceled output is bit-identical
// to ReportBatch.
func (m *MSM) ReportBatchCtx(ctx context.Context, points []Point) ([]Point, error) {
	return m.m.ReportBatchCtx(ctx, points)
}

// Epsilon implements Mechanism.
func (m *MSM) Epsilon() float64 { return m.m.Epsilon() }

// Name implements Mechanism.
func (m *MSM) Name() string { return "MSM" }

// Height returns the index height h chosen by the budget allocator.
func (m *MSM) Height() int { return m.m.Height() }

// BudgetSplit returns the per-level budgets eps_1..eps_h (summing to Eps).
func (m *MSM) BudgetSplit() []float64 {
	return append([]float64(nil), m.m.Allocation().Eps...)
}

// LeafGranularity returns the effective granularity g^h of the leaf level.
func (m *MSM) LeafGranularity() int { return m.m.LeafGrid().Granularity() }

// Precompute solves every channel in the index up front (the paper's
// offline phase), so that subsequent reports only sample.
func (m *MSM) Precompute() error { return m.m.Precompute() }

// PrecomputeCtx is Precompute under a context: canceling ctx (e.g. SIGINT
// during warmup) stops issuing new solves and returns ctx.Err(); channels
// already solved stay cached.
func (m *MSM) PrecomputeCtx(ctx context.Context) error { return m.m.PrecomputeCtx(ctx) }

// Stats returns the number of reports served and LP solves performed.
func (m *MSM) Stats() (queries, solves int) { return m.m.Stats() }

// CacheStats reports channel-store behaviour: lookups satisfied without a
// solve (hits, including requests deduplicated against an in-flight solve),
// solves performed (misses), and resident channels.
func (m *MSM) CacheStats() (hits, misses, entries int64) {
	st := m.m.StoreStats()
	return st.Hits, st.Misses, st.Entries
}

// StoreStats returns the full channel-store counter snapshot, including
// snapshot-persistence activity (disk hits and write-behind writes).
func (m *MSM) StoreStats() channel.Stats { return m.m.StoreStats() }

// DirCacheStats returns the persistent snapshot cache's own counters — loads,
// hits, decode errors, and version misses (intact files written by a foreign
// snapshot format version, e.g. a v1 directory warming a v2 process). ok is
// false when no cache directory is configured.
func (m *MSM) DirCacheStats() (channel.DirStats, bool) { return m.m.DirCacheStats() }

// SamplerInfo reports the warm-path sampling configuration (sampler kind,
// configured prune mass) and the pruning counters: solved channels
// compacted, and dense fallbacks after a failed post-prune verification.
func (m *MSM) SamplerInfo() (kind string, pruneMass float64, pruned, fallbacks int64) {
	return m.m.SamplerInfo()
}

// LocalInfo reports the locally relevant OPT configuration (radius 0 means
// off) and its solve counters: channels solved over a reduced domain, and
// local builds that fell back to the dense formulation after a failed
// restricted-verifier gate or unconverged reduced LP.
func (m *MSM) LocalInfo() (radius, massFloor float64, localChannels, denseFallbacks int64) {
	return m.m.LocalInfo()
}

// FlushCache blocks until every solved channel handed to the persistent
// snapshot cache (MSMConfig.CacheDir) has been written to disk — including,
// with a fabric, in-flight promotions between tiers. A no-op without a cache
// directory or fabric. Call after Precompute, or before shutdown, to
// guarantee the next process finds a fully populated cache.
func (m *MSM) FlushCache() {
	m.m.SyncStore()
	if m.fab != nil {
		m.fab.Sync()
	}
}

// FabricStats snapshots the distributed channel fabric — per-tier hit/miss
// counters and remote fetch/hedge/fallback activity. ok is false when the
// mechanism was built without MSMConfig.Fabric.
func (m *MSM) FabricStats() (fabric.Stats, bool) {
	if m.fab == nil {
		return fabric.Stats{}, false
	}
	return m.fab.Stats(), true
}

// FabricFetchLatency exposes the fabric's remote-fetch latency histogram
// (seconds); nil without a fabric or for a single-replica fleet.
func (m *MSM) FabricFetchLatency() *metrics.Histogram {
	if m.fab == nil {
		return nil
	}
	return m.fab.FetchLatency()
}

// OwnsChannel reports whether this replica owns key under the fleet's
// rendezvous hash. Without a fabric every key is owned (single authority).
func (m *MSM) OwnsChannel(key channel.Key) bool {
	if m.fab == nil {
		return true
	}
	return m.fab.Owns(key)
}

// ChannelSnapshot serves one channel in the persisted snapshot frame format
// for the fleet's /v1/channels endpoint. The key is validated against this
// mechanism's configuration (wrapped channel.ErrUnknownKey on mismatch).
// With solve set, a cold channel is solved through the store's full
// admission-controlled path; without it, only resident or locally cached
// channels are served and a cold key returns channel.ErrNotCached — which is
// what keeps hedged peer fetches from ever causing a duplicate solve.
func (m *MSM) ChannelSnapshot(ctx context.Context, key channel.Key, solve bool) ([]byte, error) {
	return m.m.ChannelSnapshot(ctx, key, solve)
}

// Static interface conformance checks.
var (
	_ Mechanism         = (*PlanarLaplace)(nil)
	_ Mechanism         = (*Optimal)(nil)
	_ Mechanism         = (*MSM)(nil)
	_ BatchMechanism    = (*PlanarLaplace)(nil)
	_ BatchMechanism    = (*Optimal)(nil)
	_ BatchMechanism    = (*MSM)(nil)
	_ MechanismCtx      = (*PlanarLaplace)(nil)
	_ MechanismCtx      = (*Optimal)(nil)
	_ MechanismCtx      = (*MSM)(nil)
	_ BatchMechanismCtx = (*PlanarLaplace)(nil)
	_ BatchMechanismCtx = (*Optimal)(nil)
	_ BatchMechanismCtx = (*MSM)(nil)
)
